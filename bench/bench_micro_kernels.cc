// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// experiments: matmul, conv2d forward/backward, selector scoring, KNN eval.
#include <benchmark/benchmark.h>

#include "src/cl/selection.h"
#include "src/eval/knn.h"
#include "src/tensor/conv.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace {

using namespace edsr;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  util::Rng rng(0);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  int64_t batch = state.range(0);
  util::Rng rng(0);
  tensor::Tensor input = tensor::Tensor::Randn({batch, 3, 8, 8}, &rng);
  tensor::Tensor weight = tensor::Tensor::Randn({8, 3, 3, 3}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tensor::Conv2d(input, weight, tensor::Tensor(), {1, 1}).data().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(32);

void BM_MlpTrainStep(benchmark::State& state) {
  util::Rng rng(0);
  tensor::Tensor w1 = tensor::Tensor::Randn({192, 64}, &rng, 0, 0.05f, true);
  tensor::Tensor w2 = tensor::Tensor::Randn({64, 32}, &rng, 0, 0.05f, true);
  tensor::Tensor x = tensor::Tensor::Randn({32, 192}, &rng);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    tensor::Tensor h = tensor::Relu(tensor::MatMul(x, w1));
    tensor::Tensor loss = tensor::MeanAll(tensor::Square(tensor::MatMul(h, w2)));
    loss.Backward();
    benchmark::DoNotOptimize(w1.grad().data());
  }
}
BENCHMARK(BM_MlpTrainStep);

eval::RepresentationMatrix RandomReps(int64_t n, int64_t d, uint64_t seed) {
  util::Rng rng(seed);
  eval::RepresentationMatrix reps;
  reps.n = n;
  reps.d = d;
  reps.values.resize(n * d);
  for (float& v : reps.values) v = rng.Normal();
  return reps;
}

void BM_HighEntropySelect(benchmark::State& state) {
  eval::RepresentationMatrix reps = RandomReps(state.range(0), 32, 1);
  cl::SelectionContext context{&reps, {}};
  cl::HighEntropySelector selector;
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(context, 32, &rng));
  }
}
BENCHMARK(BM_HighEntropySelect)->Arg(120)->Arg(600);

void BM_GreedyLogDetSelect(benchmark::State& state) {
  eval::RepresentationMatrix reps = RandomReps(state.range(0), 32, 3);
  cl::SelectionContext context{&reps, {}};
  cl::HighEntropySelector selector(
      cl::HighEntropySelector::Mode::kGreedyLogDet);
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(context, 32, &rng));
  }
}
BENCHMARK(BM_GreedyLogDetSelect)->Arg(120);

void BM_KnnEvaluate(benchmark::State& state) {
  int64_t n = state.range(0);
  eval::RepresentationMatrix bank = RandomReps(n, 32, 5);
  eval::RepresentationMatrix queries = RandomReps(64, 32, 6);
  std::vector<int64_t> bank_labels(n), query_labels(64);
  util::Rng rng(7);
  for (auto& l : bank_labels) l = rng.UniformInt(0, 9);
  for (auto& l : query_labels) l = rng.UniformInt(0, 9);
  eval::KnnOptions options;
  options.k = 10;
  options.num_classes = 10;
  eval::KnnClassifier knn(bank, bank_labels, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.Evaluate(queries, query_labels));
  }
}
BENCHMARK(BM_KnnEvaluate)->Arg(120)->Arg(1200);

}  // namespace

BENCHMARK_MAIN();
