// Shared configuration and helpers for the experiment harnesses.
//
// Every bench_table*/bench_fig* binary reproduces one table or figure of the
// paper at single-core scale. The workload presets and the training regime
// here were calibrated (DESIGN.md §2) so that the *dynamics* of the paper
// appear: per-increment accuracy well below ceiling, severe forgetting for
// Finetune, and visible differences between methods. The regime's key knob
// is weight decay: with many optimizer steps per increment, features that
// the current increment does not exercise decay — the single-core analogue
// of the representation interference that drives forgetting at paper scale.
//
// Flags (all optional):
//   --seeds N     number of seeds averaged per cell (default per bench)
//   --quick       reduced epochs/seeds for smoke runs
//   --csv PATH    also write the table as CSV
#ifndef EDSR_BENCH_BENCH_COMMON_H_
#define EDSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/cl/factory.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"
#include "src/util/table.h"

namespace edsr::bench {

struct BenchFlags {
  int64_t seeds = 3;
  bool quick = false;
  std::string csv;

  static BenchFlags Parse(int argc, char** argv, int64_t default_seeds = 3) {
    BenchFlags flags;
    flags.seeds = default_seeds;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        flags.quick = true;
        flags.seeds = 1;
      } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
        flags.seeds = std::atoll(argv[++i]);
      } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        flags.csv = argv[++i];
      }
    }
    return flags;
  }
};

// The frozen image-benchmark training regime.
inline cl::StrategyContext ImageContext(uint64_t seed, bool quick = false) {
  cl::StrategyContext context;
  context.encoder.backbone = ssl::EncoderConfig::BackboneType::kMlp;
  context.encoder.mlp_dims = {192, 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = quick ? 6 : 15;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.momentum = 0.9f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;
  return context;
}

// The tabular regime (paper: Adam, 7-layer MLP, data-specific first layer).
inline cl::StrategyContext TabularContext(uint64_t seed,
                                          std::vector<int64_t> head_dims,
                                          bool quick = false) {
  cl::StrategyContext context;
  context.encoder.backbone = ssl::EncoderConfig::BackboneType::kMlp;
  context.encoder.mlp_dims = {24, 32, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.encoder.input_head_dims = std::move(head_dims);
  context.epochs = quick ? 4 : 12;
  context.batch_size = 32;
  context.use_adam = true;
  context.adam_lr = 1e-3f;
  context.memory_per_task = 8;  // ~1% of the scaled tabular sets
  context.replay_batch_size = 16;
  context.seed = seed;
  return context;
}

// A named image benchmark: preset + its task count + the calibrated decay.
// Weight decay is the regime's forgetting knob (header comment); because
// total decay steps grow with sequence length, longer benchmarks use a
// softer setting so un-protected methods degrade without collapsing to
// chance.
struct ImageBenchmark {
  std::string label;
  data::SyntheticImageConfig (*config)(uint64_t);
  int64_t num_tasks;
  float weight_decay;
};

inline std::vector<ImageBenchmark> AllImageBenchmarks() {
  return {
      {"synth-cifar10", data::SynthCifar10Config, 5, 0.03f},
      {"synth-cifar100", data::SynthCifar100Config, 10, 0.012f},
      {"synth-tinyimagenet", data::SynthTinyImageNetConfig, 10, 0.012f},
      {"synth-domainnet", data::SynthDomainNetConfig, 15, 0.015f},
  };
}

// The image regime specialized to one benchmark.
inline cl::StrategyContext ContextFor(const ImageBenchmark& benchmark,
                                      uint64_t seed, bool quick = false) {
  cl::StrategyContext context = ImageContext(seed, quick);
  context.weight_decay = benchmark.weight_decay;
  return context;
}

// Builds the task sequence for a benchmark at a given seed (the class order
// is shuffled with the same seed).
inline data::TaskSequence MakeSequence(const ImageBenchmark& benchmark,
                                       uint64_t seed) {
  data::SyntheticImagePair pair =
      MakeSyntheticImageData(benchmark.config(seed));
  util::Rng order_rng(seed * 31 + 7);
  return data::TaskSequence::SplitByClasses(pair.train, pair.test,
                                            benchmark.num_tasks, &order_rng);
}

// Aggregated outcome of multi-seed runs of one method on one benchmark.
struct MethodResult {
  util::MeanStdDev acc;   // percent
  util::MeanStdDev fgt;   // percent
  double train_seconds = 0.0;  // mean per run
  std::vector<eval::AccuracyMatrix> matrices;
};

template <typename StrategyFactory>
MethodResult RunSeeds(StrategyFactory&& make_strategy,
                      const ImageBenchmark& benchmark, int64_t seeds,
                      const cl::EvalOptions& eval_options = {}) {
  std::vector<double> accs, fgts;
  MethodResult result;
  for (int64_t seed = 0; seed < seeds; ++seed) {
    data::TaskSequence sequence = MakeSequence(benchmark, seed);
    auto strategy = make_strategy(seed);
    cl::ContinualRunResult run =
        cl::RunContinual(strategy.get(), sequence, eval_options);
    accs.push_back(run.matrix.FinalAcc() * 100.0);
    fgts.push_back(run.matrix.FinalFgt() * 100.0);
    result.train_seconds += run.train_seconds;
    result.matrices.push_back(run.matrix);
  }
  result.acc = util::ComputeMeanStd(accs);
  result.fgt = util::ComputeMeanStd(fgts);
  result.train_seconds /= static_cast<double>(seeds);
  return result;
}

// Convenience: run a factory-name method across seeds.
inline MethodResult RunNamedMethod(const std::string& name,
                                   const ImageBenchmark& benchmark,
                                   int64_t seeds, bool quick) {
  return RunSeeds(
      [&](uint64_t seed) {
        return cl::MakeStrategy(name, ContextFor(benchmark, seed, quick));
      },
      benchmark, seeds);
}

inline void EmitTable(const util::Table& table, const BenchFlags& flags,
                      const std::string& title) {
  std::printf("\n%s\n%s", title.c_str(), table.ToText().c_str());
  if (!flags.csv.empty()) {
    table.WriteCsv(flags.csv).Check();
    std::printf("(csv written to %s)\n", flags.csv.c_str());
  }
  std::fflush(stdout);
}

}  // namespace edsr::bench

#endif  // EDSR_BENCH_BENCH_COMMON_H_
