// Micro-benchmarks for the live-ops latency histogram: what one Record()
// costs on the serve hot path (vs the identical workload with recording
// compiled out, and vs the coarse log2 Histogram it replaced), what a
// percentile query costs, and the full per-request RecordTrace fan-out.
//
// Emit machine-readable results with:
//   ./bench_micro_obs_histo --benchmark_out_format=json \
//                           --benchmark_out=obs_histo.json
// The rows are gated as part of the BENCH_micro_kernels.json baseline
// (scripts/verify.sh --bench), and the Record cost underwrites the <5%
// embed-p50 overhead assertion against BENCH_serve.json.
#include <benchmark/benchmark.h>

#include "bench/micro_main.h"
#include "bench/obs_histo_workload.h"
#include "src/obs/metrics.h"
#include "src/serve/trace_context.h"

namespace edsr::benchobs {

// The enabled arm: identical body to StepRecordCompiledOut, with
// EDSR_HISTO_RECORD at its workload-header default (a real Record call).
int64_t StepRecordEnabled(HistoWorkload& workload) {
  int64_t us = workload.NextLatencyUs();
  EDSR_HISTO_RECORD(workload.histo, us);
  return us;
}

}  // namespace edsr::benchobs

namespace {

using namespace edsr;

benchobs::HistoWorkload MakeWorkload(const char* name) {
  benchobs::HistoWorkload workload;
  workload.histo = obs::MetricsRegistry::Global().GetLatencyHisto(name);
  workload.histo->Reset();
  return workload;
}

// One LatencyHisto::Record: TLS cell lookup + bucket index + two relaxed
// stores and two relaxed fetch_adds.
void BM_LatencyHistoRecord(benchmark::State& state) {
  benchobs::HistoWorkload workload = MakeWorkload("bench.histo.record");
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchobs::StepRecordEnabled(workload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistoRecord);

// The identical workload with EDSR_HISTO_RECORD compiled out: subtract this
// from the enabled arm to get the pure record cost.
void BM_LatencyHistoRecordCompiledOut(benchmark::State& state) {
  benchobs::HistoWorkload workload = MakeWorkload("bench.histo.disabled");
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchobs::StepRecordCompiledOut(workload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistoRecordCompiledOut);

// The coarse log2 Histogram the serve path used before: the double->bucket
// transform plus min/max CAS-free updates. Kept as the reference point the
// HDR-style histogram had to stay comparable to.
void BM_Log2HistogramObserve(benchmark::State& state) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("bench.histo.log2");
  hist->Reset();
  benchobs::HistoWorkload workload;
  for (auto _ : state) {
    hist->Observe(static_cast<double>(workload.NextLatencyUs()));
  }
  benchmark::DoNotOptimize(hist);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Log2HistogramObserve);

// Snap + four quantile queries over a populated histogram — the kMetrics /
// SLO-evaluate read side. Arg is the number of recorded samples (the merge
// cost scales with cells, the walk with occupied buckets).
void BM_LatencyHistoSnapQuantiles(benchmark::State& state) {
  benchobs::HistoWorkload workload = MakeWorkload("bench.histo.snap");
  for (int64_t i = 0; i < state.range(0); ++i) {
    workload.histo->Record(workload.NextLatencyUs());
  }
  for (auto _ : state) {
    obs::LatencyHisto::Snapshot snap = workload.histo->Snap();
    int64_t sum = snap.Quantile(0.50) + snap.Quantile(0.95) +
                  snap.Quantile(0.99) + snap.Quantile(0.999);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistoSnapQuantiles)->Arg(1000)->Arg(100000);

// The full per-request fan-out RecordTrace performs at reply time: one
// class total + four stage records + request counter + flight event. This
// is the number that must stay <5% of the serve embed p50.
void BM_ServeRecordTrace(benchmark::State& state) {
  benchobs::HistoWorkload workload;
  serve::TraceContext context;
  context.klass = serve::RequestClass::kEmbed;
  int64_t rid = 0;
  for (auto _ : state) {
    context.rid = static_cast<uint64_t>(++rid);
    context.t_accept_us = workload.NextLatencyUs();
    context.t_queue_us = context.t_accept_us + 2;
    context.t_batch_us = context.t_queue_us + 5;
    context.t_forward_us = context.t_batch_us + 40;
    context.t_reply_us = context.t_forward_us + 3;
    serve::RecordTrace(context);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRecordTrace);

}  // namespace

EDSR_BENCHMARK_MAIN()
