// Fig. 9 — efficiency vs effectiveness across methods.
//
// Paper shape: UCL methods spend more time than the SCL baselines but reach
// higher accuracy; LUMP and EDSR are the slowest (they replay old data), and
// EDSR's extra time buys the largest accuracy gain.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  bench::ImageBenchmark benchmark = bench::AllImageBenchmarks()[1];

  util::Table table({"Method", "Train seconds/run", "Acc", "Fgt"});
  for (const char* method :
       {"finetune", "si", "der", "lump", "cassle", "edsr"}) {
    bench::MethodResult result =
        bench::RunNamedMethod(method, benchmark, flags.seeds, flags.quick);
    table.AddRow({method, util::Table::Fixed(result.train_seconds, 2),
                  util::Table::MeanStd(result.acc.mean, result.acc.stddev),
                  util::Table::MeanStd(result.fgt.mean, result.fgt.stddev)});
    std::fprintf(stderr, "[fig9] %s done\n", method);
  }
  bench::EmitTable(table, flags,
                   "Fig. 9 — time vs effectiveness on " + benchmark.label);
  return 0;
}
