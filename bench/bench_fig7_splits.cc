// Fig. 7 — different task-split settings on synth-cifar100.
//
// Paper shape: Acc_i rises over the first increments (small early data is
// inadequately learned), then methods separate; EDSR stays on top across
// both splits; Multitask is a flat reference line.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 1);
  bench::ImageBenchmark base = bench::AllImageBenchmarks()[1];

  struct Split {
    const char* label;
    int64_t num_tasks;
  };
  for (Split split : {Split{"10 tasks x 4 classes", 10},
                      Split{"5 tasks x 8 classes", 5}}) {
    bench::ImageBenchmark benchmark = base;
    benchmark.num_tasks = split.num_tasks;

    std::vector<std::string> header = {"Method"};
    for (int64_t i = 0; i < split.num_tasks; ++i) {
      header.push_back("Acc_" + std::to_string(i + 1));
    }
    util::Table table(header);

    // Multitask flat reference.
    {
      std::vector<double> accs;
      for (int64_t seed = 0; seed < flags.seeds; ++seed) {
        accs.push_back(
            cl::MultitaskAccuracy(bench::ContextFor(benchmark, seed, flags.quick),
                                  bench::MakeSequence(benchmark, seed), {}) *
            100.0);
      }
      util::MeanStdDev acc = util::ComputeMeanStd(accs);
      std::vector<std::string> row = {"multitask"};
      for (int64_t i = 0; i < split.num_tasks; ++i) {
        row.push_back(util::Table::Fixed(acc.mean, 1));
      }
      table.AddRow(row);
    }

    for (const char* method : {"finetune", "lump", "cassle", "edsr"}) {
      bench::MethodResult result =
          bench::RunNamedMethod(method, benchmark, flags.seeds, flags.quick);
      std::vector<std::string> row = {method};
      for (int64_t i = 0; i < split.num_tasks; ++i) {
        std::vector<double> values;
        for (const auto& matrix : result.matrices) {
          values.push_back(matrix.Acc(i) * 100.0);
        }
        row.push_back(util::Table::Fixed(util::ComputeMeanStd(values).mean, 1));
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig7] %s %s done\n", method, split.label);
    }
    bench::EmitTable(table, flags,
                     std::string("Fig. 7 — Acc_i per increment, ") +
                         split.label + " on " + base.label + " (%)");
  }
  return 0;
}
