// The compiled-out arm of bench_obs_overhead: EDSR_DISABLE_TRACING is
// defined before trace.h, so the span macros below expand to nothing and
// this TU's step is the zero-instrumentation baseline. Named without the
// bench_ prefix on purpose — the glob in bench/CMakeLists.txt must not turn
// it into its own binary; it is attached to bench_obs_overhead via
// target_sources.
#define EDSR_DISABLE_TRACING
#include "src/obs/trace.h"

#include "bench/obs_overhead_workload.h"

namespace edsr::benchobs {

void StepCompiledOut(ObsWorkload& workload) {
  // Identical span structure to StepTraced in bench_obs_overhead.cc; here
  // both macros compile away entirely.
  EDSR_TRACE_SPAN("batch");
  EDSR_TRACE_SPAN("train_step");
  workload.StepBody();
}

}  // namespace edsr::benchobs
