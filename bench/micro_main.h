// Shared main() for the google-benchmark micro-bench binaries.
//
// Committed BENCH_*.json baselines must come from an optimized build, so the
// main refuses to write --benchmark_out JSON unless NDEBUG was defined when
// *this project* was compiled (the system libbenchmark reports its own build
// type, not ours). Every run is tagged with an "edsr_build" context key so
// scripts/bench_compare.py can reject mismatched recordings, plus
// "edsr_simd" (the dispatch tier the run resolved to) and
// "edsr_num_threads" (pool size) so a recorded number always identifies the
// code path that produced it.
#ifndef EDSR_BENCH_MICRO_MAIN_H_
#define EDSR_BENCH_MICRO_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/tensor/simd.h"
#include "src/util/threadpool.h"

inline bool EdsrWantsJsonOut(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) return true;
    if (std::strcmp(argv[i], "--benchmark_out") == 0) return true;
  }
  return false;
}

#define EDSR_BENCHMARK_MAIN()                                                  \
  int main(int argc, char** argv) {                                            \
    const bool ndebug =                                                        \
        /* NOLINTNEXTLINE */                                                   \
        (EDSR_BENCH_NDEBUG);                                                   \
    benchmark::AddCustomContext("edsr_build", ndebug ? "release" : "debug");   \
    benchmark::AddCustomContext(                                               \
        "edsr_simd",                                                           \
        edsr::tensor::simd::TierName(edsr::tensor::simd::ActiveTier()));       \
    benchmark::AddCustomContext(                                               \
        "edsr_num_threads",                                                    \
        std::to_string(edsr::util::ThreadPool::Global().NumThreads()));        \
    if (!ndebug && EdsrWantsJsonOut(argc, argv)) {                             \
      std::fprintf(stderr,                                                     \
                   "refusing to record benchmark JSON from a non-NDEBUG "      \
                   "build; configure with --preset bench (or default "         \
                   "Release) first\n");                                        \
      return 1;                                                                \
    }                                                                          \
    benchmark::Initialize(&argc, argv);                                        \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;          \
    benchmark::RunSpecifiedBenchmarks();                                       \
    benchmark::Shutdown();                                                     \
    return 0;                                                                  \
  }

#ifdef NDEBUG
#define EDSR_BENCH_NDEBUG true
#else
#define EDSR_BENCH_NDEBUG false
#endif

#endif  // EDSR_BENCH_MICRO_MAIN_H_
