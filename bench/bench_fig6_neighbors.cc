// Fig. 6 — sensitivity to the kNN neighbour count in r(x^m).
//
// Paper shape: accuracy rises from k=0 (= L_dis) to a sweet spot, then
// falls as remote neighbours make the noise misleading; the CaSSLe
// baseline sits below the curve.
#include "bench/bench_common.h"

#include "src/core/edsr.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  bench::ImageBenchmark benchmark = bench::AllImageBenchmarks()[1];

  util::Table table({"Neighbors k", "Acc", "Fgt"});
  bench::MethodResult base =
      bench::RunNamedMethod("cassle", benchmark, flags.seeds, flags.quick);
  table.AddRow({"CaSSLe (reference)",
                util::Table::MeanStd(base.acc.mean, base.acc.stddev),
                util::Table::MeanStd(base.fgt.mean, base.fgt.stddev)});

  for (int64_t k : {0, 2, 5, 10, 25, 60}) {
    bench::MethodResult result = bench::RunSeeds(
        [&](uint64_t seed) {
          core::EdsrOptions options;
          options.noise_neighbors = k;
          if (k == 0) options.replay_mode = core::ReplayLossMode::kDis;
          return std::make_unique<core::Edsr>(
              bench::ContextFor(benchmark, seed, flags.quick), options);
        },
        benchmark, flags.seeds);
    table.AddRow({std::to_string(k),
                  util::Table::MeanStd(result.acc.mean, result.acc.stddev),
                  util::Table::MeanStd(result.fgt.mean, result.fgt.stddev)});
    std::fprintf(stderr, "[fig6] k=%lld done\n",
                 static_cast<long long>(k));
  }
  bench::EmitTable(table, flags,
                   "Fig. 6 — neighbour count for the replay noise on " +
                       benchmark.label + " (%; k=0 equals L_dis)");
  return 0;
}
