// Table VI — switching the CSSL loss from SimSiam to BarlowTwins.
//
// Paper shape: under BarlowTwins the distillation-based methods (CaSSLe,
// EDSR) degrade because batch-level cross-correlation distillation mixes
// knowledge across models; LUMP is unaffected (it only uses data); EDSR
// still beats CaSSLe thanks to the memory.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  const char* methods[] = {"finetune", "lump", "cassle", "edsr"};
  std::vector<bench::ImageBenchmark> benchmarks = {
      bench::AllImageBenchmarks()[1],  // synth-cifar100
      bench::AllImageBenchmarks()[2],  // synth-tinyimagenet
  };

  std::vector<std::string> header = {"Model"};
  for (const auto& b : benchmarks) {
    header.push_back(b.label + " (SimSiam)");
    header.push_back(b.label + " (BarlowTwins)");
  }
  util::Table table(header);

  // Multitask reference rows.
  {
    std::vector<std::string> row = {"multitask"};
    for (const auto& benchmark : benchmarks) {
      for (ssl::CsslLossKind kind : {ssl::CsslLossKind::kSimSiam,
                                     ssl::CsslLossKind::kBarlowTwins}) {
        std::vector<double> accs;
        for (int64_t seed = 0; seed < flags.seeds; ++seed) {
          cl::StrategyContext context = bench::ContextFor(benchmark, seed, flags.quick);
          context.loss_kind = kind;
          data::TaskSequence sequence = bench::MakeSequence(benchmark, seed);
          accs.push_back(cl::MultitaskAccuracy(context, sequence, {}) * 100.0);
        }
        util::MeanStdDev acc = util::ComputeMeanStd(accs);
        row.push_back(util::Table::MeanStd(acc.mean, acc.stddev));
      }
      std::fprintf(stderr, "[table6] multitask %s done\n",
                   benchmark.label.c_str());
    }
    table.AddRow(row);
  }

  for (const char* method : methods) {
    std::vector<std::string> row = {method};
    for (const auto& benchmark : benchmarks) {
      for (ssl::CsslLossKind kind : {ssl::CsslLossKind::kSimSiam,
                                     ssl::CsslLossKind::kBarlowTwins}) {
        bench::MethodResult result = bench::RunSeeds(
            [&](uint64_t seed) {
              cl::StrategyContext context =
                  bench::ContextFor(benchmark, seed, flags.quick);
              context.loss_kind = kind;
              return cl::MakeStrategy(method, context);
            },
            benchmark, flags.seeds);
        row.push_back(
            util::Table::MeanStd(result.acc.mean, result.acc.stddev));
      }
      std::fprintf(stderr, "[table6] %s %s done\n", method,
                   benchmark.label.c_str());
    }
    table.AddRow(row);
  }

  bench::EmitTable(table, flags,
                   "Table VI — L_css substitution: SimSiam vs BarlowTwins "
                   "(Acc ↑, %)");
  return 0;
}
