// Fig. 10 — replay batch size: time cost vs effectiveness.
//
// Paper shape: time grows monotonically with the replayed-batch size while
// accuracy rises then falls — replaying too much stored data crowds out
// learning the new increment; a mid-sized replay batch is the sweet spot.
#include "bench/bench_common.h"

#include "src/core/edsr.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  bench::ImageBenchmark benchmark = bench::AllImageBenchmarks()[1];

  util::Table table({"Replay batch", "Train seconds/run", "Acc", "Fgt"});
  for (int64_t replay : {2, 4, 8, 16, 32, 64}) {
    bench::MethodResult result = bench::RunSeeds(
        [&](uint64_t seed) {
          cl::StrategyContext context = bench::ContextFor(benchmark, seed, flags.quick);
          context.replay_batch_size = replay;
          // A larger budget so big replay batches are meaningful.
          context.memory_per_task = 8;
          return std::make_unique<core::Edsr>(context);
        },
        benchmark, flags.seeds);
    table.AddRow({std::to_string(replay),
                  util::Table::Fixed(result.train_seconds, 2),
                  util::Table::MeanStd(result.acc.mean, result.acc.stddev),
                  util::Table::MeanStd(result.fgt.mean, result.fgt.stddev)});
    std::fprintf(stderr, "[fig10] replay=%lld done\n",
                 static_cast<long long>(replay));
  }
  bench::EmitTable(table, flags,
                   "Fig. 10 — replayed-data size on " + benchmark.label);
  return 0;
}
