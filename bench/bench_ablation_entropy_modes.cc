// Extension ablation (beyond the paper): the three readings of the
// Tr(Cov)-maximization selection — exact top-norm, PCA-leverage (default),
// and greedy D-optimal log-det — compared on two benchmarks.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  std::vector<bench::ImageBenchmark> benchmarks = {
      bench::AllImageBenchmarks()[0],
      bench::AllImageBenchmarks()[1],
  };

  util::Table table({"Entropy mode", "Benchmark", "Acc", "Fgt"});
  struct Mode {
    const char* factory_name;
    const char* label;
  };
  for (Mode mode : {Mode{"edsr-norm", "top-norm (exact trace)"},
                    Mode{"edsr", "pca-leverage (default)"},
                    Mode{"edsr-logdet", "greedy log-det (D-optimal)"}}) {
    for (const auto& benchmark : benchmarks) {
      bench::MethodResult result = bench::RunNamedMethod(
          mode.factory_name, benchmark, flags.seeds, flags.quick);
      table.AddRow({mode.label, benchmark.label,
                    util::Table::MeanStd(result.acc.mean, result.acc.stddev),
                    util::Table::MeanStd(result.fgt.mean, result.fgt.stddev)});
      std::fprintf(stderr, "[ablation] %s %s done\n", mode.factory_name,
                   benchmark.label.c_str());
    }
  }
  bench::EmitTable(table, flags,
                   "Ablation — entropy-selection scoring modes (%)");
  return 0;
}
