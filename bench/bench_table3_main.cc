// Table III — main comparison on the four image benchmarks.
//
// Paper shape to reproduce: Multitask (upper bound) on top; among continual
// methods EDSR has the best Acc and lowest Fgt, CaSSLe second; the SCL
// baselines (SI, DER) and Finetune trail with much larger forgetting.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  const char* methods[] = {"finetune", "si",     "der",
                           "lump",     "cassle", "edsr"};

  std::vector<std::string> header = {"Model"};
  for (const auto& benchmark : bench::AllImageBenchmarks()) {
    header.push_back(benchmark.label + " Acc");
    header.push_back(benchmark.label + " Fgt");
  }
  util::Table table(header);

  // Multitask row (upper bound; no forgetting by construction).
  {
    std::vector<std::string> row = {"multitask"};
    for (const auto& benchmark : bench::AllImageBenchmarks()) {
      std::vector<double> accs;
      for (int64_t seed = 0; seed < flags.seeds; ++seed) {
        data::TaskSequence sequence = bench::MakeSequence(benchmark, seed);
        accs.push_back(
            cl::MultitaskAccuracy(bench::ContextFor(benchmark, seed, flags.quick),
                                  sequence, {}) *
            100.0);
      }
      util::MeanStdDev acc = util::ComputeMeanStd(accs);
      row.push_back(util::Table::MeanStd(acc.mean, acc.stddev));
      row.push_back("-");
      std::fprintf(stderr, "[table3] multitask %s done\n",
                   benchmark.label.c_str());
    }
    table.AddRow(row);
  }

  for (const char* method : methods) {
    std::vector<std::string> row = {method};
    for (const auto& benchmark : bench::AllImageBenchmarks()) {
      bench::MethodResult result =
          bench::RunNamedMethod(method, benchmark, flags.seeds, flags.quick);
      row.push_back(util::Table::MeanStd(result.acc.mean, result.acc.stddev));
      row.push_back(util::Table::MeanStd(result.fgt.mean, result.fgt.stddev));
      std::fprintf(stderr, "[table3] %s %s done\n", method,
                   benchmark.label.c_str());
    }
    table.AddRow(row);
  }

  bench::EmitTable(table, flags,
                   "Table III — model comparison (Acc ↑ / Fgt ↓, % over " +
                       std::to_string(flags.seeds) + " seeds)");
  return 0;
}
