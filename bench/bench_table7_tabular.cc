// Table VII — the five-increment tabular benchmark (heterogeneous dims).
//
// Paper shape: the continual methods beat Multitask (unbalanced joint
// training under-serves the small sets); EDSR is best, CaSSLe second,
// Finetune close behind. LUMP is omitted: mixup cannot span heterogeneous
// input dimensions.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 4);

  auto make_sequence = [&](uint64_t seed) {
    std::vector<std::pair<data::Dataset, data::Dataset>> pairs;
    for (const auto& config : data::TabularBenchmarkConfigs(seed)) {
      auto pair = MakeSyntheticTabularData(config);
      pairs.emplace_back(pair.train, pair.test);
    }
    return data::TaskSequence::FromDatasets(pairs);
  };
  std::vector<int64_t> head_dims;
  for (const auto& config : data::TabularBenchmarkConfigs(0)) {
    head_dims.push_back(config.num_features);
  }

  util::Table table({"Method", "Acc", "Fgt"});
  // Multitask (round-robin joint training through the input heads).
  {
    std::vector<double> accs;
    for (int64_t seed = 0; seed < flags.seeds; ++seed) {
      accs.push_back(cl::MultitaskAccuracy(
                         bench::TabularContext(seed, head_dims, flags.quick),
                         make_sequence(seed), {}) *
                     100.0);
    }
    util::MeanStdDev acc = util::ComputeMeanStd(accs);
    table.AddRow({"multitask", util::Table::MeanStd(acc.mean, acc.stddev),
                  "-"});
    std::fprintf(stderr, "[table7] multitask done\n");
  }

  for (const char* method : {"finetune", "cassle", "edsr"}) {
    std::vector<double> accs, fgts;
    for (int64_t seed = 0; seed < flags.seeds; ++seed) {
      auto strategy = cl::MakeStrategy(
          method, bench::TabularContext(seed, head_dims, flags.quick));
      cl::ContinualRunResult run =
          cl::RunContinual(strategy.get(), make_sequence(seed), {});
      accs.push_back(run.matrix.FinalAcc() * 100.0);
      fgts.push_back(run.matrix.FinalFgt() * 100.0);
    }
    util::MeanStdDev acc = util::ComputeMeanStd(accs);
    util::MeanStdDev fgt = util::ComputeMeanStd(fgts);
    table.AddRow({method, util::Table::MeanStd(acc.mean, acc.stddev),
                  util::Table::MeanStd(fgt.mean, fgt.stddev)});
    std::fprintf(stderr, "[table7] %s done\n", method);
  }

  bench::EmitTable(table, flags,
                   "Table VII — tabular benchmark (5 increments, 1% memory)");
  return 0;
}
