// End-to-end train-step micro-benchmarks: full forward/backward/optimizer
// iterations over the MLP and conv paths, the shapes the continual-learning
// loop executes thousands of times per task. Complements bench_micro_kernels
// (isolated kernels) by measuring the composed hot path, including autograd
// graph construction and the arena/pool buffer churn.
//
// Record the committed baseline with:
//   ./bench_micro_train_step --benchmark_out_format=json
//                            --benchmark_out=BENCH_train_step.json
#include <benchmark/benchmark.h>

#include "bench/micro_main.h"
#include "src/tensor/arena.h"
#include "src/tensor/conv.h"
#include "src/tensor/kernels.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace {

using namespace edsr;

void BM_TrainStepMlp(benchmark::State& state) {
  // Two-layer MLP, batch 32: matches BM_MlpTrainStep in bench_micro_kernels
  // but also folds in the SGD update so the whole step is timed.
  util::Rng rng(0);
  tensor::Tensor w1 = tensor::Tensor::Randn({192, 64}, &rng, 0, 0.05f, true);
  tensor::Tensor w2 = tensor::Tensor::Randn({64, 32}, &rng, 0, 0.05f, true);
  tensor::Tensor x = tensor::Tensor::Randn({32, 192}, &rng);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    tensor::Tensor h = tensor::Relu(tensor::MatMul(x, w1));
    tensor::Tensor loss =
        tensor::MeanAll(tensor::Square(tensor::MatMul(h, w2)));
    loss.Backward();
    tensor::kernels::Axpy(w1.numel(), -0.01f, w1.grad().data(),
                          w1.mutable_data().data());
    tensor::kernels::Axpy(w2.numel(), -0.01f, w2.grad().data(),
                          w2.mutable_data().data());
    benchmark::DoNotOptimize(w1.mutable_data().data());
  }
}
BENCHMARK(BM_TrainStepMlp);

void BM_TrainStepConv(benchmark::State& state) {
  // One conv layer forward/backward, batch 8 of 3x16x16 — the im2col /
  // col2im / GEMM round-trip through the arena.
  util::Rng rng(1);
  tensor::Tensor weight =
      tensor::Tensor::Randn({8, 3, 3, 3}, &rng, 0, 0.05f, true);
  tensor::Tensor input = tensor::Tensor::Randn({8, 3, 16, 16}, &rng);
  for (auto _ : state) {
    weight.ZeroGrad();
    tensor::Tensor out = tensor::Conv2d(input, weight, tensor::Tensor(),
                                        {/*stride=*/1, /*padding=*/1});
    tensor::Tensor loss = tensor::MeanAll(tensor::Square(out));
    loss.Backward();
    benchmark::DoNotOptimize(weight.grad().data());
  }
}
BENCHMARK(BM_TrainStepConv);

void BM_TrainStepSteadyStatePoolHitRate(benchmark::State& state) {
  // Counts arena pool traffic across the MLP step; the pool-miss counter
  // lands in the JSON so regressions in buffer reuse are visible in the
  // committed baseline, not just in wall time.
  util::Rng rng(0);
  tensor::Tensor w1 = tensor::Tensor::Randn({192, 64}, &rng, 0, 0.05f, true);
  tensor::Tensor w2 = tensor::Tensor::Randn({64, 32}, &rng, 0, 0.05f, true);
  tensor::Tensor x = tensor::Tensor::Randn({32, 192}, &rng);
  auto step = [&]() {
    w1.ZeroGrad();
    w2.ZeroGrad();
    tensor::Tensor h = tensor::Relu(tensor::MatMul(x, w1));
    tensor::Tensor loss =
        tensor::MeanAll(tensor::Square(tensor::MatMul(h, w2)));
    loss.Backward();
  };
  for (int i = 0; i < 5; ++i) step();  // warm the pool
  tensor::arena::ResetStats();
  for (auto _ : state) {
    step();
    benchmark::DoNotOptimize(w1.grad().data());
  }
  const tensor::arena::ArenaStats& stats = tensor::arena::Stats();
  state.counters["pool_hits"] = static_cast<double>(stats.pool_hits);
  state.counters["pool_misses"] = static_cast<double>(stats.pool_misses);
}
BENCHMARK(BM_TrainStepSteadyStatePoolHitRate);

}  // namespace

EDSR_BENCHMARK_MAIN();
