// Shared workload for bench_micro_obs_histo: one step generates a pseudo-
// random latency and (maybe) records it into a LatencyHisto. The two arms —
// StepRecordEnabled in bench_micro_obs_histo.cc and StepRecordCompiledOut in
// obs_histo_disabled.cc — compile the identical body with EDSR_HISTO_RECORD
// expanding to a real Record call or to nothing, so their timing difference
// is exactly the record path (same pattern as bench_obs_overhead's
// compiled-out tracing arm).
#ifndef EDSR_BENCH_OBS_HISTO_WORKLOAD_H_
#define EDSR_BENCH_OBS_HISTO_WORKLOAD_H_

#include <cstdint>

#include "src/obs/histo.h"

#ifndef EDSR_HISTO_RECORD
#define EDSR_HISTO_RECORD(histo, us) (histo)->Record(us)
#endif

namespace edsr::benchobs {

struct HistoWorkload {
  obs::LatencyHisto* histo = nullptr;
  uint64_t state = 0x9E3779B97F4A7C15ull;

  // xorshift64: cheap, and identical across both arms, so the value stream
  // (and thus the bucket-index arithmetic) cannot be constant-folded away.
  int64_t NextLatencyUs() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<int64_t>(state % 100000);  // 0 .. 100ms
  }
};

// Defined in bench_micro_obs_histo.cc (record enabled).
int64_t StepRecordEnabled(HistoWorkload& workload);
// Defined in obs_histo_disabled.cc (EDSR_HISTO_RECORD compiled out).
int64_t StepRecordCompiledOut(HistoWorkload& workload);

}  // namespace edsr::benchobs

#endif  // EDSR_BENCH_OBS_HISTO_WORKLOAD_H_
