// Table IV — how to replay the stored (high-entropy) data.
//
// Compares no replay (CaSSLe) vs replaying the memory with L_css, L_dis,
// and L_rpl. Paper shape: L_css replay over-fits (worst), distillation
// replays win, and the noise-enhanced L_rpl is best on the harder sets.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace edsr;
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv, 2);
  const char* methods[] = {"cassle", "edsr-css", "edsr-dis", "edsr"};
  const char* labels[] = {"No Replay (CaSSLe)", "L_css", "L_dis",
                          "L_rpl (EDSR)"};

  std::vector<bench::ImageBenchmark> benchmarks = {
      bench::AllImageBenchmarks()[0],  // synth-cifar10
      bench::AllImageBenchmarks()[1],  // synth-cifar100
      bench::AllImageBenchmarks()[2],  // synth-tinyimagenet
  };

  std::vector<std::string> header = {"Dataset"};
  for (const char* label : labels) header.push_back(label);
  util::Table table(header);

  for (const auto& benchmark : benchmarks) {
    std::vector<std::string> row = {benchmark.label};
    for (const char* method : methods) {
      bench::MethodResult result =
          bench::RunNamedMethod(method, benchmark, flags.seeds, flags.quick);
      row.push_back(util::Table::MeanStd(result.acc.mean, result.acc.stddev));
      std::fprintf(stderr, "[table4] %s %s done\n", benchmark.label.c_str(),
                   method);
    }
    table.AddRow(row);
  }

  bench::EmitTable(table, flags,
                   "Table IV — replay-loss ablation (Acc ↑, %; selection = "
                   "high entropy)");
  return 0;
}
