// Serving load generator: drives the ServeHandle / MicroBatcher stack the
// way a loopback client fleet would, at batch sizes 1 through 64, and
// reports throughput (items_per_second) plus request-latency percentiles
// (p50_us / p99_us user counters) per batch size. Complements
// tests/serve_test.cc (correctness) by answering the sizing question the
// batcher exists for: how many rows must coalesce before the blocked GEMM
// amortizes the per-batch dispatch cost.
//
// Record the committed baseline with:
//   ./bench_micro_serve --benchmark_out_format=json
//                       --benchmark_out=BENCH_serve.json
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "bench/micro_main.h"
#include "src/serve/server.h"
#include "src/ssl/encoder.h"
#include "src/util/rng.h"

namespace {

using namespace edsr;

// The default EncoderConfig (192 -> 64 -> 64 MLP, 32-dim representations)
// is the same shape quickstart trains, so these numbers transfer.
constexpr int64_t kInputDim = 192;

std::unique_ptr<serve::ServeHandle> MakeHandle(int64_t max_batch,
                                               int64_t cache_capacity,
                                               int64_t bank_size,
                                               bool int8_serving = false) {
  serve::ServeOptions options;
  options.batcher.max_batch = max_batch;
  options.batcher.max_queue = 4096;
  options.batcher.max_delay_us = 50;
  options.cache_capacity = cache_capacity;
  options.load.int8_serving = int8_serving;
  auto handle = std::make_unique<serve::ServeHandle>(options);
  util::Rng rng(7);
  std::unique_ptr<ssl::Encoder> encoder =
      ssl::Encoder::Make(ssl::EncoderConfig{}, &rng);
  encoder->SetTraining(false);
  encoder->SetRequiresGrad(false);
  std::vector<float> bank(bank_size * kInputDim);
  std::vector<int64_t> labels(bank_size);
  util::Rng bank_rng(13);
  for (float& v : bank) v = bank_rng.Uniform(-1.0f, 1.0f);
  for (int64_t i = 0; i < bank_size; ++i) labels[i] = i % 4;
  handle->InstallSnapshot(std::move(encoder), std::move(bank),
                          std::move(labels), "bench");
  return handle;
}

std::vector<std::vector<float>> MakeInputs(int64_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> inputs(n, std::vector<float>(kInputDim));
  for (auto& input : inputs) {
    for (float& v : input) v = rng.Uniform(-1.0f, 1.0f);
  }
  return inputs;
}

void AttachLatencyPercentiles(benchmark::State& state,
                              std::vector<double>* latencies_us) {
  if (latencies_us->empty()) return;
  std::sort(latencies_us->begin(), latencies_us->end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * (latencies_us->size() - 1));
    return (*latencies_us)[i];
  };
  state.counters["p50_us"] = at(0.50);
  state.counters["p99_us"] = at(0.99);
}

// One iteration = one full batch round trip: Pause the worker, enqueue
// `batch` distinct requests, Resume, and wait for every future. Pausing
// first makes the coalescing deterministic (the worker wakes to a full
// batch and never waits out max_delay_us for stragglers).
void BM_ServeEmbed(benchmark::State& state) {
  const int64_t batch = state.range(0);
  // Cache off: this measures the miss path (batched forward + dispatch).
  auto handle = MakeHandle(batch, /*cache_capacity=*/0, /*bank_size=*/64);
  serve::MicroBatcher* batcher = handle->batcher();
  std::vector<std::vector<float>> inputs = MakeInputs(batch, 11);
  std::vector<double> latencies_us;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    batcher->Pause();
    std::vector<std::future<serve::EmbedResult>> futures(batch);
    for (int64_t i = 0; i < batch; ++i) {
      batcher->Submit(inputs[i], /*want_label=*/false, &futures[i]).Check();
    }
    batcher->Resume();
    for (auto& future : futures) {
      serve::EmbedResult result = future.get();
      benchmark::DoNotOptimize(result.snapshot_id);
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start).count());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  AttachLatencyPercentiles(state, &latencies_us);
}
BENCHMARK(BM_ServeEmbed)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64)->UseRealTime();

// BM_ServeEmbed with the snapshot installed under int8_serving: identical
// request flow, but ProcessBatch forwards through the quantized encoder.
// Compare p50_us against the float arm at the same batch size.
void BM_ServeEmbedInt8(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto handle = MakeHandle(batch, /*cache_capacity=*/0, /*bank_size=*/64,
                           /*int8_serving=*/true);
  serve::MicroBatcher* batcher = handle->batcher();
  std::vector<std::vector<float>> inputs = MakeInputs(batch, 11);
  std::vector<double> latencies_us;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    batcher->Pause();
    std::vector<std::future<serve::EmbedResult>> futures(batch);
    for (int64_t i = 0; i < batch; ++i) {
      batcher->Submit(inputs[i], /*want_label=*/false, &futures[i]).Check();
    }
    batcher->Resume();
    for (auto& future : futures) {
      serve::EmbedResult result = future.get();
      benchmark::DoNotOptimize(result.snapshot_id);
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start).count());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  AttachLatencyPercentiles(state, &latencies_us);
}
BENCHMARK(BM_ServeEmbedInt8)->Arg(1)->Arg(8)->Arg(16)->Arg(64)->UseRealTime();

// Same load shape but asking for labels: rides the identical batched
// forward plus a kNN lookup against the 64-row replay bank per request.
void BM_ServeKnnLabel(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto handle = MakeHandle(batch, /*cache_capacity=*/0, /*bank_size=*/64);
  serve::MicroBatcher* batcher = handle->batcher();
  std::vector<std::vector<float>> inputs = MakeInputs(batch, 17);
  std::vector<double> latencies_us;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    batcher->Pause();
    std::vector<std::future<serve::EmbedResult>> futures(batch);
    for (int64_t i = 0; i < batch; ++i) {
      batcher->Submit(inputs[i], /*want_label=*/true, &futures[i]).Check();
    }
    batcher->Resume();
    for (auto& future : futures) {
      serve::EmbedResult result = future.get();
      benchmark::DoNotOptimize(result.label);
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start).count());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  AttachLatencyPercentiles(state, &latencies_us);
}
BENCHMARK(BM_ServeKnnLabel)->Arg(1)->Arg(16)->Arg(64)->UseRealTime();

// The cache fast path: a repeated input short-circuits before the batcher,
// so this bounds how cheap a served request can get.
void BM_ServeCacheHit(benchmark::State& state) {
  auto handle = MakeHandle(/*max_batch=*/8, /*cache_capacity=*/64,
                           /*bank_size=*/0);
  std::vector<float> input = MakeInputs(1, 23)[0];
  handle->Embed(input);  // prime the cache
  for (auto _ : state) {
    serve::EmbedResult result = handle->Embed(input);
    benchmark::DoNotOptimize(result.representation.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCacheHit);

}  // namespace

EDSR_BENCHMARK_MAIN()
