// Data-selection demo: trains one increment, extracts representations, and
// contrasts what every registered selector keeps — including the entropy
// trace Tr(Cov(M)) each selection achieves (paper Eq. 15) and the kNN noise
// magnitudes EDSR would store (paper §III-B) — then shows how the retrieval
// policies would rank a buffer built from the high-entropy picks.
//
//   ./selection_demo [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//                    [--selector <name[:key=value,...]>] [--retrieval <name>]
//                    [--list]
//
// Selectors and retrieval policies are enumerated from SelectorRegistry /
// RetrievalRegistry; --selector/--retrieval restrict the demo to one entry
// (an unknown name fails with the registry's list of valid names). --list
// prints every registered selector, retrieval policy, stream transform,
// cycle trigger, and image preset, then exits.
// --metrics_out appends one "selection" record per selector (name, entropy
// trace, picked indices, class coverage); --trace_out enables trace spans
// and writes a Chrome trace-event file. Both validate with
// scripts/validate_telemetry.py.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/cl/memory.h"
#include "src/cl/retrieval.h"
#include "src/cl/selection.h"
#include "src/cl/strategy.h"
#include "src/core/noise.h"
#include "src/data/synthetic.h"
#include "src/eval/representations.h"
#include "src/linalg/eigen.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"
#include "src/stream/transform.h"
#include "src/stream/trigger.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

// `--list`: every string-keyed registry a spec flag can name.
void PrintRegistries() {
  using namespace edsr;
  std::printf("selectors:\n");
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("retrieval policies:\n");
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("stream transforms:\n");
  for (const std::string& name : stream::StreamRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("cycle triggers:\n");
  for (const std::string& name : stream::TriggerRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("image presets:\n");
  for (const std::string& name : data::ImagePresetNames()) {
    std::printf("  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string metrics_out;
  std::string trace_out;
  std::string selector_spec;
  std::string retrieval_spec;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out) ||
        ParseFlag(argc, argv, &i, "--selector", &selector_spec) ||
        ParseFlag(argc, argv, &i, "--retrieval", &retrieval_spec)) {
      continue;
    }
    if (std::strcmp(argv[i], "--list") == 0) {
      PrintRegistries();
      return 0;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  // Validate the restriction flags up front so a typo fails with the
  // registry's list of valid names instead of mid-demo.
  std::vector<std::string> selector_specs;
  if (!selector_spec.empty()) {
    util::Result<std::unique_ptr<cl::DataSelector>> probe =
        cl::SelectorRegistry::Global().Create(selector_spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--selector: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
    selector_specs.push_back(selector_spec);
  } else {
    selector_specs = cl::SelectorRegistry::Global().Names();
  }
  std::vector<std::string> retrieval_specs;
  if (!retrieval_spec.empty()) {
    util::Result<std::unique_ptr<cl::RetrievalPolicy>> probe =
        cl::RetrievalRegistry::Global().Create(retrieval_spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--retrieval: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
    retrieval_specs.push_back(retrieval_spec);
  } else {
    retrieval_specs = cl::RetrievalRegistry::Global().Names();
  }

  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }
  std::unique_ptr<obs::RunLogger> logger;
  if (!metrics_out.empty()) {
    logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  data::SyntheticImageConfig config;
  config.name = "selection-demo";
  config.num_classes = 4;
  config.train_per_class = 40;
  config.test_per_class = 10;
  config.geometry = {3, 8, 8};
  config.latent_dim = 10;
  config.class_separation = 1.5f;
  config.seed = 5;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 1, nullptr);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 16;
  context.epochs = 10;
  context.seed = 1;
  cl::Finetune trainer(context);
  const data::Task& task = sequence.task(0);
  trainer.LearnIncrement(task);

  eval::RepresentationMatrix reps =
      eval::ExtractRepresentations(trainer.encoder(), task.train);
  std::printf("extracted %lld representations of dim %lld\n",
              static_cast<long long>(reps.n), static_cast<long long>(reps.d));

  const int64_t budget = 12;
  util::Rng rng(3);

  // Shared selection signals, computed once: every selector only *reads*
  // what it declared (MinVar the variance, gradient-affinity the gradients).
  cl::SelectionContext selection;
  selection.representations = &reps;
  selection.augmentation_variance = trainer.AugmentationVariance(task);
  eval::RepresentationMatrix gradients = trainer.GradientFeatures(task);
  selection.gradient_features = &gradients;

  std::vector<int64_t> entropy_picks;  // feeds the retrieval demo below
  for (const std::string& spec : selector_specs) {
    std::unique_ptr<cl::DataSelector> selector =
        std::move(cl::SelectorRegistry::Global().Create(spec)).ValueOrDie();
    EDSR_TRACE_SPAN("selection");
    std::vector<int64_t> picks =
        cl::RunSelection(selector.get(), selection, budget, &rng);
    if (selector->name() == "high-entropy") entropy_picks = picks;
    // Entropy surrogate of the kept subset: Tr(Cov(M)) with Cov = A^T A.
    std::vector<float> rows;
    for (int64_t i : picks) {
      rows.insert(rows.end(), reps.Row(i), reps.Row(i) + reps.d);
    }
    double trace = linalg::Trace(
        linalg::CovarianceGram(rows, static_cast<int64_t>(picks.size()),
                               reps.d),
        reps.d);
    // Class coverage of the selection (labels are hidden from selectors).
    std::vector<int64_t> counts(4, 0);
    for (int64_t i : picks) ++counts[task.train.Label(i)];
    std::printf(
        "%-18s Tr(Cov(M)) = %8.2f   class coverage = [%lld %lld %lld %lld]\n",
        selector->name().c_str(), trace, static_cast<long long>(counts[0]),
        static_cast<long long>(counts[1]), static_cast<long long>(counts[2]),
        static_cast<long long>(counts[3]));
    if (logger != nullptr) {
      obs::Json record = obs::Json::Object();
      record.Set("record", "selection");
      record.Set("selector", selector->name());
      record.Set("budget", budget);
      record.Set("trace_cov", trace);
      obs::Json picked = obs::Json::Array();
      for (int64_t i : picks) picked.Push(obs::Json::Int(i));
      record.Set("picks", std::move(picked));
      obs::Json coverage = obs::Json::Array();
      for (int64_t c : counts) coverage.Push(obs::Json::Int(c));
      record.Set("class_coverage", std::move(coverage));
      logger->Write(record);
    }
  }

  // The kNN noise magnitude r(x^m) EDSR would store for the first samples.
  std::printf("\nkNN noise magnitudes r(x^m) (mean over dims, k=10):\n");
  for (int64_t i = 0; i < 5; ++i) {
    std::vector<float> scale = core::KnnNoiseScale(reps, i, 10);
    double mean = 0.0;
    for (float s : scale) mean += s;
    std::printf("  sample %lld: %.4f\n", static_cast<long long>(i),
                mean / reps.d);
  }

  // Retrieval demo: buffer the high-entropy picks (write-time representation
  // = drift anchor), train further so the model moves, then contrast which
  // entries each retrieval policy would replay first.
  if (entropy_picks.empty() && !selector_specs.empty()) {
    // --selector restricted the run; reuse that selector's picks.
    std::unique_ptr<cl::DataSelector> fallback =
        std::move(cl::SelectorRegistry::Global().Create(selector_specs[0]))
            .ValueOrDie();
    entropy_picks = cl::RunSelection(fallback.get(), selection, budget, &rng);
  }
  cl::MemoryBuffer memory(budget);
  std::vector<cl::MemoryEntry> entries;
  for (int64_t pick : entropy_picks) {
    cl::MemoryEntry entry;
    const float* row = task.train.Row(pick);
    entry.features.assign(row, row + task.train.dim());
    entry.task_id = task.task_id;
    entry.source_index = pick;
    entry.label = task.train.Label(pick);
    const float* rep = reps.Row(pick);
    entry.stored_representation.assign(rep, rep + reps.d);
    entries.push_back(std::move(entry));
  }
  memory.AddIncrement(std::move(entries));
  trainer.LearnIncrement(task);  // more epochs -> representation drift

  std::printf("\nretrieval order over the %lld buffered samples "
              "(first 6 entry indices):\n",
              static_cast<long long>(memory.size()));
  for (const std::string& spec : retrieval_specs) {
    std::unique_ptr<cl::RetrievalPolicy> policy =
        std::move(cl::RetrievalRegistry::Global().Create(spec)).ValueOrDie();
    std::vector<int64_t> draw = trainer.DrawReplay(memory, policy.get(), 6);
    std::printf("  %-10s [", policy->name().c_str());
    for (size_t k = 0; k < draw.size(); ++k) {
      std::printf("%s%lld", k == 0 ? "" : " ",
                  static_cast<long long>(draw[k]));
    }
    std::printf("]\n");
  }

  if (!trace_out.empty()) {
    util::Status status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}
