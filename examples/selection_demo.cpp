// Data-selection demo: trains one increment, extracts representations, and
// contrasts what the five selectors keep — including the entropy trace
// Tr(Cov(M)) each selection achieves (paper Eq. 15) and the kNN noise
// magnitudes EDSR would store (paper §III-B).
//
//   ./selection_demo [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//
// --metrics_out appends one "selection" record per selector (name, entropy
// trace, picked indices, class coverage); --trace_out enables trace spans
// and writes a Chrome trace-event file. Both validate with
// scripts/validate_telemetry.py.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/cl/selection.h"
#include "src/cl/strategy.h"
#include "src/core/noise.h"
#include "src/data/synthetic.h"
#include "src/eval/representations.h"
#include "src/linalg/eigen.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }
  std::unique_ptr<obs::RunLogger> logger;
  if (!metrics_out.empty()) {
    logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  data::SyntheticImageConfig config;
  config.name = "selection-demo";
  config.num_classes = 4;
  config.train_per_class = 40;
  config.test_per_class = 10;
  config.geometry = {3, 8, 8};
  config.latent_dim = 10;
  config.class_separation = 1.5f;
  config.seed = 5;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 1, nullptr);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 16;
  context.epochs = 10;
  context.seed = 1;
  cl::Finetune trainer(context);
  trainer.LearnIncrement(sequence.task(0));

  eval::RepresentationMatrix reps =
      eval::ExtractRepresentations(trainer.encoder(), sequence.task(0).train);
  std::printf("extracted %lld representations of dim %lld\n",
              static_cast<long long>(reps.n), static_cast<long long>(reps.d));

  const int64_t budget = 12;
  util::Rng rng(3);
  auto report = [&](const cl::DataSelector& selector,
                    const cl::SelectionContext& ctx) {
    EDSR_TRACE_SPAN("selection");
    std::vector<int64_t> picks = selector.Select(ctx, budget, &rng);
    // Entropy surrogate of the kept subset: Tr(Cov(M)) with Cov = A^T A.
    std::vector<float> rows;
    for (int64_t i : picks) {
      rows.insert(rows.end(), reps.Row(i), reps.Row(i) + reps.d);
    }
    double trace = linalg::Trace(
        linalg::CovarianceGram(rows, static_cast<int64_t>(picks.size()),
                               reps.d),
        reps.d);
    // Class coverage of the selection (labels are hidden from selectors).
    std::vector<int64_t> counts(4, 0);
    for (int64_t i : picks) ++counts[sequence.task(0).train.Label(i)];
    std::printf("%-13s Tr(Cov(M)) = %8.2f   class coverage = [%lld %lld %lld %lld]\n",
                selector.name().c_str(), trace,
                static_cast<long long>(counts[0]),
                static_cast<long long>(counts[1]),
                static_cast<long long>(counts[2]),
                static_cast<long long>(counts[3]));
    if (logger != nullptr) {
      obs::Json record = obs::Json::Object();
      record.Set("record", "selection");
      record.Set("selector", selector.name());
      record.Set("budget", budget);
      record.Set("trace_cov", trace);
      obs::Json picked = obs::Json::Array();
      for (int64_t i : picks) picked.Push(obs::Json::Int(i));
      record.Set("picks", std::move(picked));
      obs::Json coverage = obs::Json::Array();
      for (int64_t c : counts) coverage.Push(obs::Json::Int(c));
      record.Set("class_coverage", std::move(coverage));
      logger->Write(record);
    }
  };

  cl::SelectionContext ctx{&reps, {}};
  report(cl::RandomSelector(), ctx);
  report(cl::DistantSelector(), ctx);
  report(cl::KMeansSelector(), ctx);
  report(cl::HighEntropySelector(cl::HighEntropySelector::Mode::kNorm), ctx);
  report(cl::HighEntropySelector(), ctx);  // pca-leverage default
  report(cl::HighEntropySelector(cl::HighEntropySelector::Mode::kGreedyLogDet),
         ctx);

  // The kNN noise magnitude r(x^m) EDSR would store for the first samples.
  std::printf("\nkNN noise magnitudes r(x^m) (mean over dims, k=10):\n");
  for (int64_t i = 0; i < 5; ++i) {
    std::vector<float> scale = core::KnnNoiseScale(reps, i, 10);
    double mean = 0.0;
    for (float s : scale) mean += s;
    std::printf("  sample %lld: %.4f\n", static_cast<long long>(i),
                mean / reps.d);
  }

  if (!trace_out.empty()) {
    util::Status status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}
