// Live ops plane demo + smoke driver: a loopback serve server with the
// full observability stack attached (SLO tracker, time-series exporter,
// crash flight recorder), and a matching client that exercises the in-band
// kMetrics / kStatus introspection endpoints.
//
// Server mode (default):
//
//   ./serve_ops [--port <n>] [--input_dim <n>] [--slo "<spec>"]
//               [--timeseries_out <file.jsonl>] [--metrics_interval_ms <n>]
//               [--flight_dir <dir>] [--flight_capacity <n>]
//               [--duration_ms <n>]
//
// Installs a small in-process snapshot (no training — this binary is about
// the ops plane, not the model), starts the TCP server, prints
// `PORT <port>` and `PID <pid>` on stdout, and serves until --duration_ms
// elapses (0 = until killed). With --flight_dir the flight recorder maps
// its ring at <dir>/flight_<pid>.bin and installs signal handlers, so a
// SIGTERM leaves flight_<pid>.json behind and even kill -9 leaves the
// decodable .bin (scripts/flight_decode.py).
//
// Client mode (--connect):
//
//   ./serve_ops --connect <port> [--query metrics|status]
//               [--mode json|text] [--load <n>] [--input_dim <n>]
//
// --load sends n Embed requests (unique random inputs, exercising the
// batcher) and prints `LOAD_OK <ok> <failed>`; transport errors are counted,
// not fatal, so a load client survives its server being killed under it.
// --query prints the raw kMetrics / kStatus response body on stdout.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exporter.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/serve/server.h"
#include "src/serve/tcp_server.h"
#include "src/ssl/encoder.h"
#include "src/util/rng.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

int64_t ToInt(const std::string& flag, int64_t fallback) {
  return flag.empty() ? fallback : std::strtoll(flag.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string port_flag;
  std::string input_dim_flag;
  std::string slo_spec;
  std::string timeseries_out;
  std::string interval_flag;
  std::string flight_dir;
  std::string flight_capacity_flag;
  std::string duration_flag;
  std::string connect_flag;
  std::string query = "metrics";
  std::string mode = "json";
  std::string load_flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--port", &port_flag) ||
        ParseFlag(argc, argv, &i, "--input_dim", &input_dim_flag) ||
        ParseFlag(argc, argv, &i, "--slo", &slo_spec) ||
        ParseFlag(argc, argv, &i, "--timeseries_out", &timeseries_out) ||
        ParseFlag(argc, argv, &i, "--metrics_interval_ms", &interval_flag) ||
        ParseFlag(argc, argv, &i, "--flight_dir", &flight_dir) ||
        ParseFlag(argc, argv, &i, "--flight_capacity",
                  &flight_capacity_flag) ||
        ParseFlag(argc, argv, &i, "--duration_ms", &duration_flag) ||
        ParseFlag(argc, argv, &i, "--connect", &connect_flag) ||
        ParseFlag(argc, argv, &i, "--query", &query) ||
        ParseFlag(argc, argv, &i, "--mode", &mode) ||
        ParseFlag(argc, argv, &i, "--load", &load_flag)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  const int64_t input_dim = ToInt(input_dim_flag, 12);
  if (input_dim < 1) {
    std::fprintf(stderr, "--input_dim must be positive\n");
    return 1;
  }

  // ---- client mode -------------------------------------------------------
  if (!connect_flag.empty()) {
    serve::ServeClient client;
    uint16_t port = static_cast<uint16_t>(ToInt(connect_flag, 0));
    util::Status connected = client.Connect(port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      return 1;
    }
    const int64_t load = ToInt(load_flag, 0);
    if (load > 0) {
      util::Rng rng(4242);
      int64_t ok = 0;
      int64_t failed = 0;
      for (int64_t r = 0; r < load; ++r) {
        std::vector<float> input(input_dim);
        for (float& v : input) v = rng.Uniform(-1.0f, 1.0f);
        serve::EmbedResult result = client.Embed(input);
        result.status.ok() ? ++ok : ++failed;
        if (result.status.code() == util::StatusCode::kIoError) break;
      }
      std::printf("LOAD_OK %lld %lld\n", static_cast<long long>(ok),
                  static_cast<long long>(failed));
    } else {
      util::Result<std::string> body =
          query == "status"
              ? client.Status()
              : client.Metrics(mode == "text"
                                   ? serve::MetricsMode::kPrometheusText
                                   : serve::MetricsMode::kJson);
      if (!body.ok()) {
        std::fprintf(stderr, "%s\n", body.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", (*body).c_str());
    }
    return 0;
  }

  // ---- server mode -------------------------------------------------------
  if (!flight_dir.empty()) {
    obs::FlightRecorder::Options flight;
    flight.dir = flight_dir;
    flight.capacity = static_cast<uint32_t>(ToInt(flight_capacity_flag, 4096));
    util::Status inited = obs::FlightRecorder::Global().Init(flight);
    if (!inited.ok()) {
      std::fprintf(stderr, "%s\n", inited.ToString().c_str());
      return 1;
    }
  }

  serve::ServeOptions options;
  ssl::EncoderConfig encoder_config;
  encoder_config.mlp_dims = {input_dim, 16, 16};
  encoder_config.projector_hidden = 16;
  encoder_config.representation_dim = 8;
  options.load.encoder = encoder_config;
  serve::ServeHandle handle(options);
  {
    util::Rng rng(1);
    auto encoder = ssl::Encoder::Make(encoder_config, &rng);
    encoder->SetTraining(false);
    encoder->SetRequiresGrad(false);
    // A 4-row two-class bank so KnnLabel works out of the box.
    std::vector<float> bank;
    std::vector<int64_t> labels = {0, 0, 1, 1};
    for (int64_t i = 0; i < 4; ++i) {
      bank.insert(bank.end(), input_dim, i < 2 ? -1.0f : 1.0f);
    }
    handle.InstallSnapshot(std::move(encoder), std::move(bank),
                           std::move(labels), "serve-ops");
  }

  std::unique_ptr<obs::SloTracker> slo;
  if (!slo_spec.empty()) {
    util::Result<std::vector<obs::SloObjective>> objectives =
        obs::ParseSloSpec(slo_spec);
    if (!objectives.ok()) {
      std::fprintf(stderr, "--slo: %s\n",
                   objectives.status().ToString().c_str());
      return 1;
    }
    slo = std::make_unique<obs::SloTracker>(
        std::move(objectives).ValueOrDie(), /*window=*/8);
    // Wire every serve request class to its instruments (get-or-create:
    // the histograms exist before the first request hits them).
    auto& metrics = obs::MetricsRegistry::Global();
    for (const char* klass : {"embed", "knn", "health"}) {
      const std::string name(klass);
      slo->Bind(name, metrics.GetLatencyHisto("serve.lat." + name),
                metrics.GetCounter("serve.req." + name),
                metrics.GetCounter("serve.err." + name));
    }
  }

  serve::TcpServer server(&handle);
  if (slo != nullptr) server.SetSloTracker(slo.get());
  util::Status started =
      server.Start(static_cast<uint16_t>(ToInt(port_flag, 0)));
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!timeseries_out.empty()) {
    obs::MetricsExporterOptions exporter_options;
    exporter_options.path = timeseries_out;
    exporter_options.interval_ms = ToInt(interval_flag, 1000);
    exporter_options.slo = slo.get();
    if (exporter_options.interval_ms < 1) {
      std::fprintf(stderr, "--metrics_interval_ms must be >= 1\n");
      return 1;
    }
    exporter = std::make_unique<obs::MetricsExporter>(exporter_options);
    util::Status exporting = exporter->Start();
    if (!exporting.ok()) {
      std::fprintf(stderr, "%s\n", exporting.ToString().c_str());
      return 1;
    }
  }

  // The smoke harness parses these two lines.
  std::printf("PORT %u\n", server.port());
  std::printf("PID %d\n", static_cast<int>(::getpid()));
  std::fflush(stdout);

  const int64_t duration_ms = ToInt(duration_flag, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(duration_ms);
  while (duration_ms == 0 || std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  return 0;
}
