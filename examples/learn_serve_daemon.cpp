// Online learn-and-serve daemon driver + smoke client.
//
// Server mode (default):
//
//   ./learn_serve_daemon --dir <state_dir> [--port <n>]
//       [--strategy edsr] [--preset SynthCifar10] [--trigger "count:n=64"]
//       [--micro_batch <n>] [--seed <n>] [--memory_per_task <n>]
//       [--replay <n>] [--max_cycles <n>] [--train_hold_ms <n>]
//       [--no_fsync] [--slo "<spec>"] [--duration_ms <n>]
//
// Starts a LearnServeDaemon rooted at --dir (journal + checkpoint +
// daemon.jsonl live there; restarting with the same --dir resumes), wires
// its ingest handler into a TcpServer, prints `PORT <port>` / `PID <pid>`,
// and serves until --duration_ms elapses (0 = until killed). kill -9 at any
// point is safe: the next start replays the journal past the last
// checkpoint and re-runs the interrupted cycle bit-identically.
// --train_hold_ms sleeps inside every micro-batch step (torture hook: it
// widens the window for landing a kill mid-cycle).
//
// Client mode (--connect):
//
//   ./learn_serve_daemon --connect <port> --ingest <n> [--skip <k>]
//       [--stream "SynthCifar10|label_noise:p=0.1"] [--seed <n>]
//   ./learn_serve_daemon --connect <port> --wait_cycles <n> [--timeout_ms <n>]
//   ./learn_serve_daemon --connect <port> --last_seq
//
// --ingest draws n samples from the stream spec (same generator as the
// stream driver, so the fed stream is reproducible) and sends them as
// kIngest frames; prints `INGEST_OK <acked> <failed> <last_seq>`. Transport
// errors are counted, not fatal, so an ingest client survives its server
// being killed under it. --skip discards the first k stream samples before
// sending — resuming an interrupted feed: set k to the server's journaled
// seq (--last_seq, which prints `LAST_SEQ <n>` from the daemon.last_seq
// gauge) and the stream continues exactly where the journal ends.
// --wait_cycles polls the in-band kMetrics endpoint until the
// daemon.cycles gauge reaches n; prints `CYCLES <n>`.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/daemon.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/serve/tcp_server.h"
#include "src/stream/source.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

int64_t ToInt(const std::string& flag, int64_t fallback) {
  return flag.empty() ? fallback : std::strtoll(flag.c_str(), nullptr, 10);
}

// Pulls `"name":<number>` out of a kMetrics JSON body (-1 when absent).
double JsonNumber(const std::string& body, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  size_t at = body.find(key);
  if (at == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string dir;
  std::string port_flag;
  std::string strategy = "edsr";
  std::string preset = "SynthCifar10";
  std::string trigger = "count:n=64";
  std::string micro_batch_flag;
  std::string seed_flag;
  std::string memory_flag;
  std::string replay_flag;
  std::string max_cycles_flag;
  std::string train_hold_flag;
  std::string slo_spec;
  std::string duration_flag;
  std::string connect_flag;
  std::string ingest_flag;
  std::string skip_flag;
  std::string stream_spec;
  std::string wait_cycles_flag;
  std::string timeout_flag;
  bool no_fsync = false;
  bool query_last_seq = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no_fsync") == 0) {
      no_fsync = true;
      continue;
    }
    if (std::strcmp(argv[i], "--last_seq") == 0) {
      query_last_seq = true;
      continue;
    }
    if (ParseFlag(argc, argv, &i, "--dir", &dir) ||
        ParseFlag(argc, argv, &i, "--port", &port_flag) ||
        ParseFlag(argc, argv, &i, "--strategy", &strategy) ||
        ParseFlag(argc, argv, &i, "--preset", &preset) ||
        ParseFlag(argc, argv, &i, "--trigger", &trigger) ||
        ParseFlag(argc, argv, &i, "--micro_batch", &micro_batch_flag) ||
        ParseFlag(argc, argv, &i, "--seed", &seed_flag) ||
        ParseFlag(argc, argv, &i, "--memory_per_task", &memory_flag) ||
        ParseFlag(argc, argv, &i, "--replay", &replay_flag) ||
        ParseFlag(argc, argv, &i, "--max_cycles", &max_cycles_flag) ||
        ParseFlag(argc, argv, &i, "--train_hold_ms", &train_hold_flag) ||
        ParseFlag(argc, argv, &i, "--slo", &slo_spec) ||
        ParseFlag(argc, argv, &i, "--duration_ms", &duration_flag) ||
        ParseFlag(argc, argv, &i, "--connect", &connect_flag) ||
        ParseFlag(argc, argv, &i, "--ingest", &ingest_flag) ||
        ParseFlag(argc, argv, &i, "--skip", &skip_flag) ||
        ParseFlag(argc, argv, &i, "--stream", &stream_spec) ||
        ParseFlag(argc, argv, &i, "--wait_cycles", &wait_cycles_flag) ||
        ParseFlag(argc, argv, &i, "--timeout_ms", &timeout_flag)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(ToInt(seed_flag, 0));

  // ---- client mode -------------------------------------------------------
  if (!connect_flag.empty()) {
    serve::ServeClient client;
    uint16_t port = static_cast<uint16_t>(ToInt(connect_flag, 0));
    util::Status connected = client.Connect(port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      return 1;
    }

    if (query_last_seq) {
      util::Result<std::string> body =
          client.Metrics(serve::MetricsMode::kJson);
      if (!body.ok()) {
        std::fprintf(stderr, "%s\n", body.status().ToString().c_str());
        return 1;
      }
      double last_seq = JsonNumber(*body, "daemon.last_seq");
      std::printf("LAST_SEQ %lld\n",
                  static_cast<long long>(last_seq < 0 ? 0 : last_seq));
      return 0;
    }

    const int64_t wait_cycles = ToInt(wait_cycles_flag, 0);
    if (wait_cycles > 0) {
      const int64_t timeout_ms = ToInt(timeout_flag, 60000);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms);
      while (std::chrono::steady_clock::now() < deadline) {
        util::Result<std::string> body =
            client.Metrics(serve::MetricsMode::kJson);
        if (body.ok()) {
          double cycles = JsonNumber(*body, "daemon.cycles");
          if (cycles >= static_cast<double>(wait_cycles)) {
            std::printf("CYCLES %lld\n",
                        static_cast<long long>(cycles));
            return 0;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      std::fprintf(stderr, "timed out waiting for %lld cycles\n",
                   static_cast<long long>(wait_cycles));
      return 1;
    }

    const int64_t ingest = ToInt(ingest_flag, 0);
    if (ingest <= 0) {
      std::fprintf(stderr, "--connect needs --ingest or --wait_cycles\n");
      return 1;
    }
    if (stream_spec.empty()) stream_spec = preset;
    util::Result<stream::StreamBundle> bundle =
        stream::MakeStreamBundle(stream_spec, seed);
    if (!bundle.ok()) {
      std::fprintf(stderr, "--stream: %s\n",
                   bundle.status().ToString().c_str());
      return 1;
    }
    const int64_t skip = ToInt(skip_flag, 0);
    if (skip > 0) (*bundle).source->NextBatch(skip);  // resume: discard prefix
    std::vector<stream::StreamSample> samples =
        (*bundle).source->NextBatch(ingest);
    int64_t acked = 0;
    int64_t failed = 0;
    uint64_t last_seq = 0;
    for (const stream::StreamSample& sample : samples) {
      serve::ServeClient::IngestReply reply =
          client.Ingest(sample.observed_label, sample.features);
      if (reply.status.ok()) {
        ++acked;
        last_seq = reply.seq;
      } else {
        ++failed;
        if (reply.status.code() == util::StatusCode::kIoError) break;
      }
    }
    std::printf("INGEST_OK %lld %lld %llu\n", static_cast<long long>(acked),
                static_cast<long long>(failed),
                static_cast<unsigned long long>(last_seq));
    return failed == 0 ? 0 : 2;
  }

  // ---- server mode -------------------------------------------------------
  if (dir.empty()) {
    std::fprintf(stderr, "--dir is required in server mode\n");
    return 1;
  }
  daemon::DaemonOptions options;
  options.directory = dir;
  options.strategy = strategy;
  options.preset = preset;
  options.trigger_spec = trigger;
  options.micro_batch = ToInt(micro_batch_flag, 16);
  options.seed = seed;
  options.memory_per_task = ToInt(memory_flag, 8);
  options.replay_batch_size = ToInt(replay_flag, 8);
  options.max_cycles = ToInt(max_cycles_flag, -1);
  options.train_hold_us = ToInt(train_hold_flag, 0) * 1000;
  options.fsync_journal = !no_fsync;

  daemon::LearnServeDaemon daemon(options);
  util::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::unique_ptr<obs::SloTracker> slo;
  if (!slo_spec.empty()) {
    util::Result<std::vector<obs::SloObjective>> objectives =
        obs::ParseSloSpec(slo_spec);
    if (!objectives.ok()) {
      std::fprintf(stderr, "--slo: %s\n",
                   objectives.status().ToString().c_str());
      return 1;
    }
    slo = std::make_unique<obs::SloTracker>(
        std::move(objectives).ValueOrDie(), /*window=*/8);
    auto& metrics = obs::MetricsRegistry::Global();
    for (const char* klass : {"embed", "knn", "health", "ingest"}) {
      const std::string name(klass);
      slo->Bind(name, metrics.GetLatencyHisto("serve.lat." + name),
                metrics.GetCounter("serve.req." + name),
                metrics.GetCounter("serve.err." + name));
    }
  }

  serve::TcpServer server(daemon.handle());
  server.SetIngestHandler(daemon.MakeIngestHandler());
  if (slo != nullptr) server.SetSloTracker(slo.get());
  util::Status serving =
      server.Start(static_cast<uint16_t>(ToInt(port_flag, 0)));
  if (!serving.ok()) {
    std::fprintf(stderr, "%s\n", serving.ToString().c_str());
    return 1;
  }

  // The smoke harness parses these two lines.
  std::printf("PORT %u\n", server.port());
  std::printf("PID %d\n", static_cast<int>(::getpid()));
  std::fflush(stdout);

  const int64_t duration_ms = ToInt(duration_flag, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(duration_ms);
  while (duration_ms == 0 || std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  daemon.Stop();
  return 0;
}
