// Serving demo: train a two-increment EDSR run with checkpointing, serve
// the increment-1 model over a loopback socket, and hot-swap to the
// increment-2 checkpoint while client threads keep sending Embed/KnnLabel
// traffic — then prove that not one response was dropped or mixed model
// versions.
//
//   ./serve_embeddings [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//                      [--clients <n>] [--requests <n per client>]
//
// The flow mirrors a production continual-learning deployment:
//
//   1. RunContinual(stop_after_increment=0) checkpoints the increment-1
//      model; the file is kept aside as inc1.ckpt.
//   2. ResumeContinual finishes the run; run.ckpt is now the increment-2
//      model (same file path a trainer process would atomically replace).
//   3. A ServeHandle + TcpServer serve inc1.ckpt; client threads hammer
//      Embed/KnnLabel over TCP.
//   4. Mid-traffic, LoadAndSwap(run.ckpt) hot-swaps to increment 2.
//      In-flight batches finish on the old weights; nothing is dropped.
//   5. Every response for the fixed probe input is checked post-hoc: its
//      representation must be bitwise the increment-1 answer or the
//      increment-2 answer, consistent with its reported snapshot id.
//
// --metrics_out appends one "serve" record (request/error/mixed counters,
// cache stats, serve.* metrics snapshot; schema in DESIGN.md §7) that
// scripts/validate_telemetry.py checks — including mixed_responses == 0.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"
#include "src/serve/server.h"
#include "src/serve/tcp_server.h"
#include "src/util/stopwatch.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

struct ProbeObservation {
  uint64_t snapshot_id = 0;
  std::vector<float> representation;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string metrics_out;
  std::string trace_out;
  std::string clients_flag;
  std::string requests_flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out) ||
        ParseFlag(argc, argv, &i, "--clients", &clients_flag) ||
        ParseFlag(argc, argv, &i, "--requests", &requests_flag)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  int64_t num_clients =
      clients_flag.empty() ? 4 : std::strtoll(clients_flag.c_str(), nullptr, 10);
  int64_t requests_per_client =
      requests_flag.empty() ? 200
                            : std::strtoll(requests_flag.c_str(), nullptr, 10);
  if (num_clients <= 0 || requests_per_client <= 0) {
    std::fprintf(stderr, "--clients and --requests must be positive\n");
    return 1;
  }
  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }

  // ---- 1+2: train two increments, keeping both checkpoints --------------
  data::SyntheticImageConfig data_config;
  data_config.name = "serve-demo";
  data_config.num_classes = 8;
  data_config.train_per_class = 30;
  data_config.test_per_class = 10;
  data_config.geometry = {3, 8, 8};
  data_config.latent_dim = 10;
  data_config.class_separation = 1.5f;
  data_config.seed = 42;
  data::SyntheticImagePair pair = MakeSyntheticImageData(data_config);
  util::Rng split_rng(7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, &split_rng);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 5;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = 0;

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "edsr_serve_demo").string();
  std::filesystem::remove_all(work_dir);
  cl::CheckpointOptions checkpoint;
  checkpoint.directory = work_dir;
  checkpoint.stop_after_increment = 0;  // pause after increment 1

  core::Edsr strategy(context);
  std::printf("training increment 1/2...\n");
  cl::RunContinual(&strategy, sequence, {}, checkpoint);
  const std::string run_ckpt = work_dir + "/" + checkpoint.filename;
  const std::string inc1_ckpt = work_dir + "/inc1.ckpt";
  std::filesystem::copy_file(run_ckpt, inc1_ckpt);

  std::printf("training increment 2/2...\n");
  checkpoint.stop_after_increment = -1;
  core::Edsr resumed(context);
  cl::ContinualRunResult result{eval::AccuracyMatrix(sequence.num_tasks())};
  util::Status status =
      cl::ResumeContinual(&resumed, sequence, {}, checkpoint, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "resume failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("final Acc = %.1f%%, final Fgt = %.1f%%\n",
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0);

  // ---- 3: serve increment 1 over a loopback socket ----------------------
  serve::ServeOptions options;
  options.load.encoder = context.encoder;
  serve::ServeHandle handle(options);
  status = handle.LoadAndSwap(inc1_ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const uint64_t inc1_id = handle.registry()->Current()->id();
  serve::TcpServer server(&handle);
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "cannot bind a loopback port\n");
    return 1;
  }
  std::printf("serving increment-1 snapshot %llu on 127.0.0.1:%u\n",
              static_cast<unsigned long long>(inc1_id), server.port());

  // The fixed probe input whose responses prove the swap never mixes.
  util::Rng probe_rng(99);
  std::vector<float> probe(pair.train.dim());
  for (float& v : probe) v = probe_rng.Uniform(-1.0f, 1.0f);

  std::atomic<int64_t> ok_responses{0};
  std::atomic<int64_t> dropped{0};
  std::mutex observations_mu;
  std::vector<ProbeObservation> observations;

  util::Stopwatch traffic_watch;
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client;
      if (!client.Connect(server.port()).ok()) {
        dropped.fetch_add(requests_per_client);
        return;
      }
      util::Rng rng(1000 + c);
      for (int64_t r = 0; r < requests_per_client; ++r) {
        if (r % 3 == 0) {
          // Unique input: exercises the miss path and fills the cache.
          std::vector<float> input(probe.size());
          for (float& v : input) v = rng.Uniform(-1.0f, 1.0f);
          serve::EmbedResult embed = client.Embed(input);
          embed.status.ok() ? ok_responses.fetch_add(1) : dropped.fetch_add(1);
        } else if (r % 3 == 1) {
          serve::EmbedResult label = client.KnnLabel(probe);
          label.status.ok() ? ok_responses.fetch_add(1) : dropped.fetch_add(1);
        } else {
          serve::EmbedResult embed = client.Embed(probe);
          if (!embed.status.ok()) {
            dropped.fetch_add(1);
            continue;
          }
          ok_responses.fetch_add(1);
          std::lock_guard<std::mutex> lock(observations_mu);
          observations.push_back(
              {embed.snapshot_id, std::move(embed.representation)});
        }
      }
    });
  }

  // ---- 4: hot-swap to increment 2 mid-traffic ---------------------------
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  status = handle.LoadAndSwap(run_ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "swap failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const uint64_t inc2_id = handle.registry()->Current()->id();
  std::printf("hot-swapped to increment-2 snapshot %llu mid-traffic\n",
              static_cast<unsigned long long>(inc2_id));

  for (std::thread& client : clients) client.join();
  const double traffic_seconds = traffic_watch.ElapsedSeconds();
  server.Stop();

  // ---- 5: verify nothing mixed ------------------------------------------
  // The two legal probe answers, one per snapshot, fetched from the cache-
  // coherent serving path itself (the registry still holds increment 2; the
  // increment-1 reference was recorded by the earliest observations).
  serve::EmbedResult inc2_probe = handle.Embed(probe);
  int64_t mixed = 0;
  std::vector<float> inc1_representation;
  for (const ProbeObservation& obs : observations) {
    if (obs.snapshot_id == inc1_id) {
      if (inc1_representation.empty()) {
        inc1_representation = obs.representation;
      } else if (obs.representation != inc1_representation) {
        ++mixed;
      }
    } else if (obs.snapshot_id == inc2_id) {
      if (obs.representation != inc2_probe.representation) ++mixed;
    } else {
      ++mixed;  // a snapshot id nobody installed
    }
  }
  std::printf(
      "traffic: %lld ok, %lld dropped, %lld mixed across %zu probe checks "
      "(%.0f req/s)\n",
      static_cast<long long>(ok_responses.load()),
      static_cast<long long>(dropped.load()), static_cast<long long>(mixed),
      observations.size(),
      static_cast<double>(ok_responses.load()) / traffic_seconds);

  // Embed and KnnLabel latencies live in separate per-class histograms now;
  // report the embed class, which dominates this demo's traffic.
  obs::LatencyHisto::Snapshot latency =
      obs::MetricsRegistry::Global().GetLatencyHisto("serve.lat.embed")->Snap();
  std::printf("server-side latency: p50 ~%lldus  p99 ~%lldus  (%lld requests)\n",
              static_cast<long long>(latency.Quantile(0.5)),
              static_cast<long long>(latency.Quantile(0.99)),
              static_cast<long long>(latency.count));

  if (!metrics_out.empty()) {
    obs::RunLogger logger(metrics_out);
    if (!logger.ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    obs::Json record = obs::Json::Object();
    record.Set("record", "serve");
    record.Set("snapshot_id", static_cast<int64_t>(inc2_id));
    record.Set("source", run_ckpt);
    record.Set("increments_seen",
               handle.registry()->Current()->increments_seen());
    record.Set("swaps", handle.registry()->swaps());
    record.Set("requests", ok_responses.load() + dropped.load());
    record.Set("ok", ok_responses.load());
    record.Set("dropped", dropped.load());
    record.Set("mixed_responses", mixed);
    obs::Json cache = obs::Json::Object();
    cache.Set("size", handle.cache()->size());
    cache.Set("capacity", handle.cache()->capacity());
    record.Set("cache", std::move(cache));
    obs::Json perf = obs::Json::Object();
    perf.Set("traffic_seconds", traffic_seconds);
    perf.Set("latency_us_p50", static_cast<double>(latency.Quantile(0.5)));
    perf.Set("latency_us_p99", static_cast<double>(latency.Quantile(0.99)));
    perf.Set("throughput_rps",
             static_cast<double>(ok_responses.load()) / traffic_seconds);
    perf.Set("metrics", obs::MetricsRegistry::Global().ToJson());
    record.Set("perf", std::move(perf));  // machine-dependent; always last
    logger.Write(record);
    std::printf("wrote serve record to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return mixed == 0 && dropped.load() == 0 ? 0 : 1;
}
