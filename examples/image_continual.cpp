// Image continual learning: compare Finetune, CaSSLe, and EDSR on the
// synth-cifar10 benchmark (5 increments), printing per-increment Acc/Fgt
// and the forgetting heatmap — a miniature of the paper's Table III row.
//
//   ./image_continual [seed]
#include <cstdio>
#include <cstdlib>

#include "src/cl/factory.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"

int main(int argc, char** argv) {
  using namespace edsr;
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  data::SyntheticImagePair pair =
      MakeSyntheticImageData(data::SynthCifar10Config(seed));
  util::Rng split_rng(seed * 31 + 7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 5, &split_rng);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 15;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;

  for (const char* method : {"finetune", "cassle", "edsr"}) {
    auto strategy = cl::MakeStrategy(method, context);
    cl::ContinualRunResult result = cl::RunContinual(strategy.get(), sequence, {});
    std::printf("\n=== %s ===\n", method);
    std::printf("per-increment Acc_i:");
    for (int64_t i = 0; i < sequence.num_tasks(); ++i) {
      std::printf(" %.1f", result.matrix.Acc(i) * 100.0);
    }
    std::printf("\nfinal Acc = %.1f%%  Fgt = %.1f%%  (train %.1fs)\n",
                result.matrix.FinalAcc() * 100.0,
                result.matrix.FinalFgt() * 100.0, result.train_seconds);
    std::printf("forgetting heatmap (log10 %%, . = none):\n%s",
                result.matrix.ForgettingHeatmap().c_str());
  }
  return 0;
}
