// Image continual learning: compare Finetune, CaSSLe, and EDSR on the
// synth-cifar10 benchmark (5 increments), printing per-increment Acc/Fgt
// and the forgetting heatmap — a miniature of the paper's Table III row.
//
//   ./image_continual [seed] [--method <name>] [--epochs <n>]
//                     [--selector <name[:key=value,...]>] [--retrieval <name>]
//                     [--checkpoint_dir <dir>] [--resume]
//                     [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//                     [--list]
//
// Flags accept both `--flag value` and `--flag=value`. --method restricts
// the comparison to one strategy; --epochs overrides the per-increment
// epoch count (the CI telemetry check runs a 2-epoch miniature).
// --selector/--retrieval override the replay strategies' data-selection and
// replay-retrieval specs through SelectorRegistry / RetrievalRegistry; an
// unknown name fails up front with the list of registered entries. --list
// prints every registered selector, retrieval policy, stream transform,
// cycle trigger, and image preset, then exits.
//
// With --checkpoint_dir, each method writes an atomic run snapshot after
// every increment under <dir>/<method>/run.ckpt; --resume picks a killed
// run back up from its latest snapshot (and falls back to a fresh run when
// no usable checkpoint exists), reproducing the uninterrupted run exactly.
//
// --metrics_out appends structured run records (one JSON object per line:
// per-epoch loss components, per-increment selection stats and accuracy
// rows; schema in DESIGN.md §6). --trace_out enables trace spans and writes
// a Chrome trace-event JSON loadable in Perfetto / chrome://tracing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/cl/factory.h"
#include "src/cl/retrieval.h"
#include "src/cl/selection.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"
#include "src/stream/transform.h"
#include "src/stream/trigger.h"
#include "src/util/logging.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

// `--list`: every string-keyed registry a spec flag can name.
void PrintRegistries() {
  using namespace edsr;
  std::printf("selectors:\n");
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("retrieval policies:\n");
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("stream transforms:\n");
  for (const std::string& name : stream::StreamRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("cycle triggers:\n");
  for (const std::string& name : stream::TriggerRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("image presets:\n");
  for (const std::string& name : data::ImagePresetNames()) {
    std::printf("  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;
  uint64_t seed = 0;
  std::string checkpoint_dir;
  std::string method_filter;
  std::string metrics_out;
  std::string trace_out;
  std::string epochs_flag;
  std::string selector_spec;
  std::string retrieval_spec;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--checkpoint_dir", &checkpoint_dir) ||
        ParseFlag(argc, argv, &i, "--method", &method_filter) ||
        ParseFlag(argc, argv, &i, "--epochs", &epochs_flag) ||
        ParseFlag(argc, argv, &i, "--selector", &selector_spec) ||
        ParseFlag(argc, argv, &i, "--retrieval", &retrieval_spec) ||
        ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out)) {
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      PrintRegistries();
      return 0;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint_dir\n");
    return 1;
  }
  // Validate registry specs up front: strategy construction aborts on a bad
  // spec, whereas here a typo exits cleanly with the registered names.
  if (!selector_spec.empty()) {
    util::Result<std::unique_ptr<cl::DataSelector>> probe =
        cl::SelectorRegistry::Global().Create(selector_spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--selector: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
  }
  if (!retrieval_spec.empty()) {
    util::Result<std::unique_ptr<cl::RetrievalPolicy>> probe =
        cl::RetrievalRegistry::Global().Create(retrieval_spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--retrieval: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }

  data::SyntheticImagePair pair =
      MakeSyntheticImageData(data::SynthCifar10Config(seed));
  util::Rng split_rng(seed * 31 + 7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 5, &split_rng);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 15;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;
  context.selector_spec = selector_spec;
  if (!retrieval_spec.empty()) context.retrieval_spec = retrieval_spec;
  if (!epochs_flag.empty()) {
    context.epochs = std::strtoll(epochs_flag.c_str(), nullptr, 10);
    if (context.epochs <= 0) {
      std::fprintf(stderr, "--epochs must be positive\n");
      return 1;
    }
  }

  obs::RunLogger* logger = nullptr;
  std::unique_ptr<obs::RunLogger> metrics_logger;
  if (!metrics_out.empty()) {
    metrics_logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!metrics_logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    logger = metrics_logger.get();
  }

  for (const char* method : {"finetune", "cassle", "edsr"}) {
    if (!method_filter.empty() && method_filter != method) continue;
    auto strategy = cl::MakeStrategy(method, context);
    if (logger != nullptr) {
      obs::Json header = obs::Json::Object();
      header.Set("record", "run");
      header.Set("strategy", method);
      header.Set("seed", static_cast<int64_t>(seed));
      header.Set("increments", sequence.num_tasks());
      header.Set("epochs", context.epochs);
      logger->Write(header);
      strategy->SetRunLogger(logger);
    }
    cl::CheckpointOptions checkpoint;
    if (!checkpoint_dir.empty()) {
      checkpoint.directory = checkpoint_dir + "/" + method;
    }
    cl::ContinualRunResult result{eval::AccuracyMatrix(sequence.num_tasks())};
    bool resumed = false;
    if (resume) {
      util::Status status = cl::ResumeContinual(strategy.get(), sequence, {},
                                                checkpoint, &result);
      resumed = status.ok();
      if (!resumed) {
        // A missing or corrupt snapshot downgrades to a fresh run rather
        // than aborting the whole comparison.
        EDSR_LOG(Warning) << "[" << method << "] no usable checkpoint ("
                          << status.ToString() << "); starting fresh";
        strategy = cl::MakeStrategy(method, context);
        if (logger != nullptr) strategy->SetRunLogger(logger);
      }
    }
    if (!resumed) {
      result = cl::RunContinual(strategy.get(), sequence, {}, checkpoint);
    }
    std::printf("\n=== %s ===\n", method);
    std::printf("per-increment Acc_i:");
    for (int64_t i = 0; i < sequence.num_tasks(); ++i) {
      std::printf(" %.1f", result.matrix.Acc(i) * 100.0);
    }
    std::printf("\nfinal Acc = %.1f%%  Fgt = %.1f%%  (train %.1fs)\n",
                result.matrix.FinalAcc() * 100.0,
                result.matrix.FinalFgt() * 100.0, result.train_seconds);
    std::printf("forgetting heatmap (log10 %%, . = none):\n%s",
                result.matrix.ForgettingHeatmap().c_str());
  }

  if (!trace_out.empty()) {
    util::Status status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    EDSR_LOG(Info) << "wrote trace to " << trace_out << " ("
                   << obs::Tracer::dropped_events() << " events dropped)";
  }
  return 0;
}
