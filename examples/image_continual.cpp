// Image continual learning: compare Finetune, CaSSLe, and EDSR on the
// synth-cifar10 benchmark (5 increments), printing per-increment Acc/Fgt
// and the forgetting heatmap — a miniature of the paper's Table III row.
//
//   ./image_continual [seed] [--checkpoint_dir <dir>] [--resume]
//
// With --checkpoint_dir, each method writes an atomic run snapshot after
// every increment under <dir>/<method>/run.ckpt; --resume picks a killed
// run back up from its latest snapshot (and falls back to a fresh run when
// no usable checkpoint exists), reproducing the uninterrupted run exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/cl/factory.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"

int main(int argc, char** argv) {
  using namespace edsr;
  uint64_t seed = 0;
  std::string checkpoint_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint_dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint_dir\n");
    return 1;
  }

  data::SyntheticImagePair pair =
      MakeSyntheticImageData(data::SynthCifar10Config(seed));
  util::Rng split_rng(seed * 31 + 7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 5, &split_rng);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 15;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;

  for (const char* method : {"finetune", "cassle", "edsr"}) {
    auto strategy = cl::MakeStrategy(method, context);
    cl::CheckpointOptions checkpoint;
    if (!checkpoint_dir.empty()) {
      checkpoint.directory = checkpoint_dir + "/" + method;
    }
    cl::ContinualRunResult result{eval::AccuracyMatrix(sequence.num_tasks())};
    bool resumed = false;
    if (resume) {
      util::Status status = cl::ResumeContinual(strategy.get(), sequence, {},
                                                checkpoint, &result);
      resumed = status.ok();
      if (!resumed) {
        // A missing or corrupt snapshot downgrades to a fresh run rather
        // than aborting the whole comparison.
        std::printf("[%s] no usable checkpoint (%s); starting fresh\n",
                    method, status.ToString().c_str());
        strategy = cl::MakeStrategy(method, context);
      }
    }
    if (!resumed) {
      result = cl::RunContinual(strategy.get(), sequence, {}, checkpoint);
    }
    std::printf("\n=== %s ===\n", method);
    std::printf("per-increment Acc_i:");
    for (int64_t i = 0; i < sequence.num_tasks(); ++i) {
      std::printf(" %.1f", result.matrix.Acc(i) * 100.0);
    }
    std::printf("\nfinal Acc = %.1f%%  Fgt = %.1f%%  (train %.1fs)\n",
                result.matrix.FinalAcc() * 100.0,
                result.matrix.FinalFgt() * 100.0, result.train_seconds);
    std::printf("forgetting heatmap (log10 %%, . = none):\n%s",
                result.matrix.ForgettingHeatmap().c_str());
  }
  return 0;
}
