// Tabular continual learning across heterogeneous feature spaces: the five
// Table II tabular presets (16/17/14/20/10 features) learned as a
// 5-increment sequence through per-increment input heads, with EDSR's
// memory replay routed through the right head for each stored sample.
//
//   ./tabular_continual [seed] [--epochs <n>]
//                       [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//
// Flags accept both `--flag value` and `--flag=value`. --metrics_out appends
// structured run records (DESIGN.md §6); --trace_out enables trace spans and
// writes Chrome trace-event JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;
  uint64_t seed = 0;
  std::string metrics_out;
  std::string trace_out;
  std::string epochs_flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out) ||
        ParseFlag(argc, argv, &i, "--epochs", &epochs_flag)) {
      continue;
    }
    seed = std::strtoull(argv[i], nullptr, 10);
  }
  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }

  std::vector<std::pair<data::Dataset, data::Dataset>> pairs;
  std::vector<int64_t> head_dims;
  for (const auto& config : data::TabularBenchmarkConfigs(seed)) {
    auto pair = MakeSyntheticTabularData(config);
    std::printf("%-16s %lld features, %lld train rows, positive rate %.1f%%\n",
                config.name.c_str(),
                static_cast<long long>(config.num_features),
                static_cast<long long>(config.train_size),
                config.positive_rate * 100.0f);
    head_dims.push_back(config.num_features);
    pairs.emplace_back(pair.train, pair.test);
  }
  data::TaskSequence sequence = data::TaskSequence::FromDatasets(pairs);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {24, 32, 32, 32};  // shared trunk
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.encoder.input_head_dims = head_dims;  // data-specific first layer
  context.epochs = 12;
  context.batch_size = 32;
  context.use_adam = true;  // the paper's tabular optimizer
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;
  if (!epochs_flag.empty()) {
    context.epochs = std::strtoll(epochs_flag.c_str(), nullptr, 10);
    if (context.epochs <= 0) {
      std::fprintf(stderr, "--epochs must be positive\n");
      return 1;
    }
  }

  core::Edsr edsr(context);
  std::unique_ptr<obs::RunLogger> metrics_logger;
  if (!metrics_out.empty()) {
    metrics_logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!metrics_logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    obs::Json header = obs::Json::Object();
    header.Set("record", "run");
    header.Set("strategy", "edsr");
    header.Set("seed", static_cast<int64_t>(seed));
    header.Set("increments", sequence.num_tasks());
    header.Set("epochs", context.epochs);
    metrics_logger->Write(header);
    edsr.SetRunLogger(metrics_logger.get());
  }

  cl::ContinualRunResult result = cl::RunContinual(&edsr, sequence, {});
  std::printf("\naccuracy matrix:\n%s", result.matrix.ToString().c_str());
  std::printf("final Acc = %.1f%%, Fgt = %.1f%%\n",
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0);
  std::printf("memory spans %lld entries with per-increment dims:",
              static_cast<long long>(edsr.memory().size()));
  for (int64_t i = 0; i < edsr.memory().size();
       i += context.memory_per_task) {
    std::printf(" %zu", edsr.memory().entry(i).features.size());
  }
  std::printf("\n");

  if (!trace_out.empty()) {
    util::Status status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    EDSR_LOG(Info) << "wrote trace to " << trace_out;
  }
  return 0;
}
