// Tabular continual learning across heterogeneous feature spaces: the five
// Table II tabular presets (16/17/14/20/10 features) learned as a
// 5-increment sequence through per-increment input heads, with EDSR's
// memory replay routed through the right head for each stored sample.
//
//   ./tabular_continual [seed]
#include <cstdio>
#include <cstdlib>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"

int main(int argc, char** argv) {
  using namespace edsr;
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  std::vector<std::pair<data::Dataset, data::Dataset>> pairs;
  std::vector<int64_t> head_dims;
  for (const auto& config : data::TabularBenchmarkConfigs(seed)) {
    auto pair = MakeSyntheticTabularData(config);
    std::printf("%-16s %lld features, %lld train rows, positive rate %.1f%%\n",
                config.name.c_str(),
                static_cast<long long>(config.num_features),
                static_cast<long long>(config.train_size),
                config.positive_rate * 100.0f);
    head_dims.push_back(config.num_features);
    pairs.emplace_back(pair.train, pair.test);
  }
  data::TaskSequence sequence = data::TaskSequence::FromDatasets(pairs);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {24, 32, 32, 32};  // shared trunk
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.encoder.input_head_dims = head_dims;  // data-specific first layer
  context.epochs = 12;
  context.batch_size = 32;
  context.use_adam = true;  // the paper's tabular optimizer
  context.memory_per_task = 8;
  context.replay_batch_size = 16;
  context.seed = seed;

  core::Edsr edsr(context);
  cl::ContinualRunResult result = cl::RunContinual(&edsr, sequence, {});
  std::printf("\naccuracy matrix:\n%s", result.matrix.ToString().c_str());
  std::printf("final Acc = %.1f%%, Fgt = %.1f%%\n",
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0);
  std::printf("memory spans %lld entries with per-increment dims:",
              static_cast<long long>(edsr.memory().size()));
  for (int64_t i = 0; i < edsr.memory().size();
       i += context.memory_per_task) {
    std::printf(" %zu", edsr.memory().entry(i).features.size());
  }
  std::printf("\n");
  return 0;
}
