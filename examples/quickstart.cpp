// Quickstart: train EDSR on a two-increment synthetic image stream and
// inspect accuracy, forgetting, and the selected memory.
//
//   ./quickstart
//
// Walks through the full public API surface: dataset generation, task
// splitting, strategy construction, the continual loop, and evaluation.
#include <cstdio>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"

int main() {
  using namespace edsr;

  // 1. Generate an unlabeled-for-training synthetic image benchmark:
  //    8 classes rendered from latent class prototypes.
  data::SyntheticImageConfig data_config;
  data_config.name = "quickstart";
  data_config.num_classes = 8;
  data_config.train_per_class = 30;
  data_config.test_per_class = 20;
  data_config.geometry = {3, 8, 8};
  data_config.latent_dim = 10;
  data_config.class_separation = 1.5f;
  data_config.latent_noise = 1.0f;
  data_config.seed = 42;
  data::SyntheticImagePair pair = MakeSyntheticImageData(data_config);
  std::printf("generated %lld train / %lld test images (%lld dims)\n",
              static_cast<long long>(pair.train.size()),
              static_cast<long long>(pair.test.size()),
              static_cast<long long>(pair.train.dim()));

  // 2. Split into a class-incremental sequence: 2 increments x 4 classes.
  util::Rng split_rng(7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, &split_rng);

  // 3. Configure the encoder + training regime.
  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 10;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;   // the storage budget s per increment
  context.replay_batch_size = 16;
  context.seed = 0;

  // 4. Build EDSR (entropy-based selection + noise-enhanced replay) and run
  //    the continual loop; evaluation uses the paper's KNN protocol.
  core::Edsr edsr(context);
  cl::ContinualRunResult result = cl::RunContinual(&edsr, sequence, {});

  std::printf("\naccuracy matrix (row i = after increment i):\n%s",
              result.matrix.ToString().c_str());
  std::printf("final Acc = %.1f%%, final Fgt = %.1f%%\n",
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0);

  // 5. Peek at the memory the entropy selector kept.
  std::printf("\nmemory: %lld stored samples (budget %lld per increment)\n",
              static_cast<long long>(edsr.memory().size()),
              static_cast<long long>(context.memory_per_task));
  const cl::MemoryEntry& entry = edsr.memory().entry(0);
  std::printf("first entry: increment %lld, source row %lld, "
              "noise scale dims %zu\n",
              static_cast<long long>(entry.task_id),
              static_cast<long long>(entry.source_index),
              entry.noise_scale.size());
  return 0;
}
