// Quickstart: train EDSR on a two-increment synthetic image stream and
// inspect accuracy, forgetting, and the selected memory.
//
//   ./quickstart [--metrics_out <file.jsonl>] [--trace_out <file.json>]
//
// Walks through the full public API surface: dataset generation, task
// splitting, strategy construction, the continual loop, and evaluation.
// --metrics_out appends the structured run records the trainer emits
// (DESIGN.md §6); --trace_out enables trace spans and writes a Chrome
// trace-event file loadable in Perfetto. Both validate with
// scripts/validate_telemetry.py.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/run_record.h"
#include "src/obs/trace.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--trace_out", &trace_out)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  if (!trace_out.empty()) {
    obs::Tracer::SetEnabled(true);
    obs::Tracer::SetEventRecording(true);
  }

  // 1. Generate an unlabeled-for-training synthetic image benchmark:
  //    8 classes rendered from latent class prototypes.
  data::SyntheticImageConfig data_config;
  data_config.name = "quickstart";
  data_config.num_classes = 8;
  data_config.train_per_class = 30;
  data_config.test_per_class = 20;
  data_config.geometry = {3, 8, 8};
  data_config.latent_dim = 10;
  data_config.class_separation = 1.5f;
  data_config.latent_noise = 1.0f;
  data_config.seed = 42;
  data::SyntheticImagePair pair = MakeSyntheticImageData(data_config);
  std::printf("generated %lld train / %lld test images (%lld dims)\n",
              static_cast<long long>(pair.train.size()),
              static_cast<long long>(pair.test.size()),
              static_cast<long long>(pair.train.dim()));

  // 2. Split into a class-incremental sequence: 2 increments x 4 classes.
  util::Rng split_rng(7);
  data::TaskSequence sequence =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, &split_rng);

  // 3. Configure the encoder + training regime.
  cl::StrategyContext context;
  context.encoder.mlp_dims = {pair.train.dim(), 64, 64};
  context.encoder.projector_hidden = 64;
  context.encoder.representation_dim = 32;
  context.epochs = 10;
  context.batch_size = 32;
  context.lr = 0.05f;
  context.weight_decay = 0.03f;
  context.memory_per_task = 8;   // the storage budget s per increment
  context.replay_batch_size = 16;
  context.seed = 0;

  // 4. Build EDSR (entropy-based selection + noise-enhanced replay) and run
  //    the continual loop; evaluation uses the paper's KNN protocol.
  core::Edsr edsr(context);
  std::unique_ptr<obs::RunLogger> logger;
  if (!metrics_out.empty()) {
    logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    obs::Json header = obs::Json::Object();
    header.Set("record", "run");
    header.Set("strategy", "edsr");
    header.Set("seed", static_cast<int64_t>(context.seed));
    header.Set("increments", sequence.num_tasks());
    header.Set("epochs", context.epochs);
    logger->Write(header);
    edsr.SetRunLogger(logger.get());
  }
  cl::ContinualRunResult result = cl::RunContinual(&edsr, sequence, {});

  std::printf("\naccuracy matrix (row i = after increment i):\n%s",
              result.matrix.ToString().c_str());
  std::printf("final Acc = %.1f%%, final Fgt = %.1f%%\n",
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0);

  // 5. Peek at the memory the entropy selector kept.
  std::printf("\nmemory: %lld stored samples (budget %lld per increment)\n",
              static_cast<long long>(edsr.memory().size()),
              static_cast<long long>(context.memory_per_task));
  const cl::MemoryEntry& entry = edsr.memory().entry(0);
  std::printf("first entry: increment %lld, source row %lld, "
              "noise scale dims %zu\n",
              static_cast<long long>(entry.task_id),
              static_cast<long long>(entry.source_index),
              entry.noise_scale.size());

  if (!trace_out.empty()) {
    util::Status status = obs::Tracer::WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  return 0;
}
