// Extension demo: BYOL pre-training with an EMA target network, scored with
// the clustering metrics (purity / NMI) and round-tripped through the binary
// checkpoint format.
//
//   ./byol_pretrain
#include <cstdio>

#include "src/augment/view_provider.h"
#include "src/data/synthetic.h"
#include "src/data/batching.h"
#include "src/eval/cluster_metrics.h"
#include "src/eval/representations.h"
#include "src/optim/optimizer.h"
#include "src/ssl/byol.h"
#include "src/ssl/encoder.h"

int main() {
  using namespace edsr;

  data::SyntheticImageConfig config;
  config.name = "byol-demo";
  config.num_classes = 6;
  config.train_per_class = 40;
  config.test_per_class = 10;
  config.geometry = {3, 8, 8};
  config.latent_dim = 10;
  config.class_separation = 1.6f;
  config.seed = 11;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);

  util::Rng rng(3);
  ssl::EncoderConfig encoder_config;
  encoder_config.mlp_dims = {pair.train.dim(), 64, 64};
  encoder_config.projector_hidden = 64;
  encoder_config.representation_dim = 32;
  auto online = ssl::Encoder::Make(encoder_config, &rng);
  auto target = ssl::Encoder::Make(encoder_config, &rng);
  ssl::EmaTracker ema(online.get(), target.get(), /*tau=*/0.97f);
  ema.HardCopy();
  target->SetRequiresGrad(false);
  target->SetTraining(false);
  ssl::ByolLoss loss(32, 32, &rng);

  std::vector<tensor::Tensor> params = online->Parameters();
  for (const tensor::Tensor& p : loss.Parameters()) params.push_back(p);
  optim::SgdOptions sgd_options;
  sgd_options.lr = 0.05f;
  optim::Sgd sgd(params, sgd_options);
  optim::CosineLr schedule(0.05f, 10 * 8);

  auto provider = augment::ViewProvider::ForDataset(pair.train);
  data::BatchIterator iterator(pair.train.size(), 32, &rng);
  std::vector<int64_t> batch;
  int64_t step = 0;
  for (int64_t epoch = 0; epoch < 10; ++epoch) {
    iterator.Reset();
    double epoch_loss = 0.0;
    int64_t batches = 0;
    while (iterator.Next(&batch)) {
      tensor::Tensor v1 = provider->View(pair.train, batch, &rng);
      tensor::Tensor v2 = provider->View(pair.train, batch, &rng);
      schedule.Apply(&sgd, step++);
      sgd.ZeroGrad();
      tensor::Tensor l =
          loss.Loss(online->Forward(v1), online->Forward(v2),
                    target->Forward(v1), target->Forward(v2));
      l.Backward();
      sgd.Step();
      ema.Update();
      epoch_loss += l.item();
      ++batches;
    }
    std::printf("epoch %lld: byol loss %.4f (lr %.4f)\n",
                static_cast<long long>(epoch), epoch_loss / batches,
                sgd.lr());
  }

  // Cluster quality of the learned representations against hidden labels.
  eval::RepresentationMatrix reps =
      eval::ExtractRepresentations(online.get(), pair.train);
  eval::ClusterScores scores = eval::KMeansClusterScores(
      reps, pair.train.labels(), config.num_classes, config.num_classes,
      &rng);
  std::printf("\nk-means on representations: purity %.3f, NMI %.3f\n",
              scores.purity, scores.nmi);

  // Checkpoint round trip.
  std::string path = "/tmp/edsr_byol_encoder.bin";
  online->SaveState(path).Check();
  auto reloaded = ssl::Encoder::Make(encoder_config, &rng);
  reloaded->LoadState(path).Check();
  eval::RepresentationMatrix reloaded_reps =
      eval::ExtractRepresentations(reloaded.get(), pair.train);
  double max_diff = 0.0;
  for (size_t i = 0; i < reps.values.size(); ++i) {
    max_diff = std::max(
        max_diff,
        static_cast<double>(std::abs(reps.values[i] - reloaded_reps.values[i])));
  }
  std::printf("checkpoint round-trip max representation diff: %.2e\n",
              max_diff);
  std::remove(path.c_str());
  return 0;
}
