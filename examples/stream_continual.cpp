// Task-free streaming experiment matrix: runs (strategy × stream spec ×
// trigger) cells through the boundary-free StreamDriver and emits one
// "stream" JSONL record per consolidation cycle — the scenario-diversity
// harness (imbalanced / noisy / corrupted streams, ID + OOD probes).
//
//   ./stream_continual [--seed <n>] [--methods <name,name,...>]
//                      [--streams "<spec>;<spec>"] [--triggers "<spec>;<spec>"]
//                      [--micro_batch <n>] [--samples <n>] [--ood <preset>]
//                      [--metrics_out <file.jsonl>]
//                      [--timeseries_out <file.jsonl>]
//                      [--metrics_interval_ms <n>]
//                      [--checkpoint_dir <dir>] [--resume]
//                      [--stop_after_cycle <n>] [--list]
//
// Stream specs compose an image preset with dirty-data transform stages,
//   "SynthCifar10|imbalance:alpha=1.5|label_noise:p=0.2"
// and trigger specs pick the consolidation cadence ("count:n=64" or
// "drift:threshold=0.02,min=48,max=96"). Both lists are semicolon-separated
// because the specs themselves contain commas. --ood names a disjoint
// preset probed after every cycle ("none" disables); --list prints every
// registered selector, retrieval policy, stream transform, trigger, and
// image preset, then exits.
//
// With --checkpoint_dir, each cell snapshots atomically after every cycle
// under <dir>/<cell>/stream.ckpt; --resume continues a killed run
// bit-identically (--stop_after_cycle simulates the kill).
//
// --timeseries_out attaches a background MetricsExporter writing one
// "serve_timeseries" record every --metrics_interval_ms (default 1000),
// carrying the stream.* per-cycle gauges alongside the full registry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cl/factory.h"
#include "src/cl/retrieval.h"
#include "src/cl/selection.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/exporter.h"
#include "src/obs/run_record.h"
#include "src/stream/driver.h"
#include "src/util/logging.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& list, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t pos = list.find(sep, start);
    std::string item = list.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    if (!item.empty()) out.push_back(item);
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

void PrintRegistries() {
  using namespace edsr;
  std::printf("selectors:\n");
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("retrieval policies:\n");
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("stream transforms:\n");
  for (const std::string& name : stream::StreamRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("cycle triggers:\n");
  for (const std::string& name : stream::TriggerRegistry::Global().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("image presets:\n");
  for (const std::string& name : data::ImagePresetNames()) {
    std::printf("  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  uint64_t seed = 0;
  std::string seed_flag;
  std::string methods_flag;
  std::string streams_flag;
  std::string triggers_flag;
  std::string micro_batch_flag;
  std::string samples_flag;
  std::string ood_flag;
  std::string metrics_out;
  std::string timeseries_out;
  std::string interval_flag;
  std::string checkpoint_dir;
  std::string stop_after_flag;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--seed", &seed_flag) ||
        ParseFlag(argc, argv, &i, "--methods", &methods_flag) ||
        ParseFlag(argc, argv, &i, "--streams", &streams_flag) ||
        ParseFlag(argc, argv, &i, "--triggers", &triggers_flag) ||
        ParseFlag(argc, argv, &i, "--micro_batch", &micro_batch_flag) ||
        ParseFlag(argc, argv, &i, "--samples", &samples_flag) ||
        ParseFlag(argc, argv, &i, "--ood", &ood_flag) ||
        ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--timeseries_out", &timeseries_out) ||
        ParseFlag(argc, argv, &i, "--metrics_interval_ms", &interval_flag) ||
        ParseFlag(argc, argv, &i, "--checkpoint_dir", &checkpoint_dir) ||
        ParseFlag(argc, argv, &i, "--stop_after_cycle", &stop_after_flag)) {
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      continue;
    }
    if (std::strcmp(argv[i], "--list") == 0) {
      PrintRegistries();
      return 0;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  if (!seed_flag.empty()) seed = std::strtoull(seed_flag.c_str(), nullptr, 10);
  int64_t micro_batch =
      micro_batch_flag.empty()
          ? 16
          : std::strtoll(micro_batch_flag.c_str(), nullptr, 10);
  int64_t total_samples =
      samples_flag.empty() ? 256
                           : std::strtoll(samples_flag.c_str(), nullptr, 10);
  if (micro_batch < 2 || total_samples < 2) {
    std::fprintf(stderr, "--micro_batch and --samples must be >= 2\n");
    return 1;
  }
  int64_t stop_after_cycle =
      stop_after_flag.empty()
          ? -1
          : std::strtoll(stop_after_flag.c_str(), nullptr, 10);
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint_dir\n");
    return 1;
  }

  std::vector<std::string> methods =
      methods_flag.empty() ? std::vector<std::string>{"edsr"}
                           : Split(methods_flag, ',');
  std::vector<std::string> streams =
      streams_flag.empty()
          ? std::vector<std::string>{
                "SynthCifar10|imbalance:alpha=1.2|label_noise:p=0.2"}
          : Split(streams_flag, ';');
  std::vector<std::string> triggers =
      triggers_flag.empty()
          ? std::vector<std::string>{"count:n=64",
                                     "drift:threshold=0.02,min=48,max=96"}
          : Split(triggers_flag, ';');
  std::string ood_preset = ood_flag.empty() ? "SynthTinyImageNet" : ood_flag;

  // Validate every spec up front so one typo fails before any training.
  for (const std::string& spec : streams) {
    util::Result<stream::StreamSpec> probe = stream::ParseStreamSpec(spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--streams: %s\n", probe.status().message().c_str());
      return 1;
    }
  }
  for (const std::string& spec : triggers) {
    util::Result<std::unique_ptr<stream::CycleTrigger>> probe =
        stream::TriggerRegistry::Global().Create(spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--triggers: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
  }
  if (ood_preset != "none") {
    util::Result<data::SyntheticImageConfig> probe =
        data::ImagePresetConfig(ood_preset, seed);
    if (!probe.ok()) {
      std::fprintf(stderr, "--ood: %s\n", probe.status().message().c_str());
      return 1;
    }
  }

  std::unique_ptr<obs::RunLogger> logger;
  if (!metrics_out.empty()) {
    logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!timeseries_out.empty()) {
    obs::MetricsExporterOptions exporter_options;
    exporter_options.path = timeseries_out;
    exporter_options.interval_ms =
        interval_flag.empty()
            ? 1000
            : std::strtoll(interval_flag.c_str(), nullptr, 10);
    if (exporter_options.interval_ms < 1) {
      std::fprintf(stderr, "--metrics_interval_ms must be >= 1\n");
      return 1;
    }
    exporter = std::make_unique<obs::MetricsExporter>(exporter_options);
    util::Status started = exporter->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }

  // The OOD probe is shared by every cell (disjoint preset, ground truth).
  data::Task ood_task;
  bool have_ood = ood_preset != "none";
  if (have_ood) {
    data::SyntheticImagePair ood_pair = data::MakeSyntheticImageData(
        *data::ImagePresetConfig(ood_preset, seed));
    ood_task.train = std::move(ood_pair.train);
    ood_task.test = std::move(ood_pair.test);
    ood_task.task_id = 0;
  }

  std::printf("stream matrix: %zu methods x %zu streams x %zu triggers, "
              "%lld samples in micro-batches of %lld\n",
              methods.size(), streams.size(), triggers.size(),
              static_cast<long long>(total_samples),
              static_cast<long long>(micro_batch));

  int64_t cell = 0;
  for (size_t s = 0; s < streams.size(); ++s) {
    for (size_t t = 0; t < triggers.size(); ++t) {
      for (const std::string& method : methods) {
        // Fresh bundle per cell: sources are stateful streams.
        util::Result<stream::StreamBundle> bundle_result =
            stream::MakeStreamBundle(streams[s], seed);
        if (!bundle_result.ok()) {
          std::fprintf(stderr, "%s\n",
                       bundle_result.status().ToString().c_str());
          return 1;
        }
        stream::StreamBundle bundle =
            std::move(bundle_result).ValueOrDie();
        util::Result<std::unique_ptr<stream::CycleTrigger>> trigger_result =
            stream::TriggerRegistry::Global().Create(triggers[t]);
        std::unique_ptr<stream::CycleTrigger> trigger =
            std::move(trigger_result).ValueOrDie();

        data::Task id_task;
        id_task.train = bundle.id_train;
        id_task.test = bundle.id_test;
        id_task.task_id = 0;
        if (have_ood && ood_task.train.dim() != id_task.train.dim()) {
          std::fprintf(stderr,
                       "--ood: preset %s dim %lld != stream dim %lld\n",
                       ood_preset.c_str(),
                       static_cast<long long>(ood_task.train.dim()),
                       static_cast<long long>(id_task.train.dim()));
          return 1;
        }

        cl::StrategyContext context;
        context.encoder.mlp_dims = {id_task.train.dim(), 64, 64};
        context.encoder.projector_hidden = 64;
        context.encoder.representation_dim = 32;
        context.batch_size = micro_batch;
        context.lr = 0.05f;
        context.weight_decay = 0.03f;
        context.memory_per_task = 8;
        context.replay_batch_size = 8;
        context.seed = seed;
        auto strategy = cl::MakeStrategy(method, context);
        const auto* edsr_strategy =
            dynamic_cast<const core::Edsr*>(strategy.get());

        stream::StreamRunOptions options;
        options.micro_batch = micro_batch;
        options.total_samples = total_samples;
        options.id_probe = &id_task;
        options.ood_probe = have_ood ? &ood_task : nullptr;
        options.memory =
            edsr_strategy != nullptr ? &edsr_strategy->memory() : nullptr;
        options.logger = logger.get();
        options.stream_spec = streams[s];
        options.trigger_spec = triggers[t];
        options.stop_after_cycle = stop_after_cycle;
        if (!checkpoint_dir.empty()) {
          options.checkpoint_directory =
              checkpoint_dir + "/" + method + "-s" + std::to_string(s) +
              "-t" + std::to_string(t);
        }

        stream::StreamRunResult result;
        bool resumed = false;
        if (resume) {
          util::Status status = stream::ResumeStream(
              strategy.get(), bundle.source.get(), trigger.get(), options,
              &result);
          resumed = status.ok();
          if (!resumed) {
            // A missing or corrupt snapshot downgrades to a fresh run
            // rather than aborting the whole matrix.
            EDSR_LOG(Warning)
                << "[" << method << "] no usable stream checkpoint ("
                << status.ToString() << "); starting fresh";
            strategy = cl::MakeStrategy(method, context);
            edsr_strategy = dynamic_cast<const core::Edsr*>(strategy.get());
            options.memory = edsr_strategy != nullptr
                                 ? &edsr_strategy->memory()
                                 : nullptr;
            bundle_result = stream::MakeStreamBundle(streams[s], seed);
            bundle = std::move(bundle_result).ValueOrDie();
          }
        }
        if (!resumed) {
          util::Result<stream::StreamRunResult> run = stream::RunStream(
              strategy.get(), bundle.source.get(), trigger.get(), options);
          if (!run.ok()) {
            std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
            return 1;
          }
          result = std::move(run).ValueOrDie();
        }

        ++cell;
        const stream::StreamCycleResult* last =
            result.cycles.empty() ? nullptr : &result.cycles.back();
        std::printf(
            "[%3lld] %-10s %-52s %-36s cycles=%zu id=%5.1f%% ood=%5.1f%%\n",
            static_cast<long long>(cell), method.c_str(), streams[s].c_str(),
            triggers[t].c_str(), result.cycles.size(),
            last != nullptr ? last->id_accuracy * 100.0 : 0.0,
            last != nullptr && last->ood_accuracy >= 0.0
                ? last->ood_accuracy * 100.0
                : 0.0);
        for (const stream::StreamCycleResult& c : result.cycles) {
          char ood[32] = "";
          if (c.ood_accuracy >= 0.0) {
            std::snprintf(ood, sizeof(ood), " ood=%.1f%%",
                          c.ood_accuracy * 100.0);
          }
          std::printf(
              "      cycle %lld (%s): %lld samples, loss=%.3f, drift=%.4f, "
              "buffer=%lld (H=%.2f), id=%.1f%%%s\n",
              static_cast<long long>(c.cycle), c.cause.c_str(),
              static_cast<long long>(c.samples), c.loss, c.drift,
              static_cast<long long>(c.buffer_size), c.buffer_entropy,
              c.id_accuracy * 100.0, ood);
        }
      }
    }
  }
  return 0;
}
