// Selection-strategy experiment matrix: runs EDSR end-to-end over every
// (selector × retrieval policy × data preset × memory budget) cell and
// emits one "selection_matrix" JSONL record per cell — the harness behind
// the Table-V-style selector/retrieval comparison (scripts/report_matrix.py
// tabulates the output).
//
//   ./selection_matrix [--metrics_out <file.jsonl>] [--seed <n>]
//                      [--epochs <n>] [--selectors <spec,spec,...>]
//                      [--retrievals <name,name,...>]
//                      [--presets <easy,hard>] [--budgets <n,n,...>]
//
// Defaults run every registered selector × 3 retrieval policies × 2 presets
// × 2 budgets. Each cell trains the full EDSR pipeline (3 increments) and
// reports final accuracy, forgetting, the achieved memory entropy
// Tr(Cov(f̂(M))), and wall time. Unknown selector/retrieval names fail up
// front with the registry's list of valid entries.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/cl/retrieval.h"
#include "src/cl/selection.h"
#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/run_record.h"

namespace {

// `--name value` and `--name=value`; advances *i past a consumed value.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const char* arg = argv[*i];
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsr;

  std::string metrics_out;
  std::string seed_flag;
  std::string epochs_flag;
  std::string selectors_flag;
  std::string retrievals_flag;
  std::string presets_flag;
  std::string budgets_flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "--metrics_out", &metrics_out) ||
        ParseFlag(argc, argv, &i, "--seed", &seed_flag) ||
        ParseFlag(argc, argv, &i, "--epochs", &epochs_flag) ||
        ParseFlag(argc, argv, &i, "--selectors", &selectors_flag) ||
        ParseFlag(argc, argv, &i, "--retrievals", &retrievals_flag) ||
        ParseFlag(argc, argv, &i, "--presets", &presets_flag) ||
        ParseFlag(argc, argv, &i, "--budgets", &budgets_flag)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument %s\n", argv[i]);
    return 1;
  }
  uint64_t seed = seed_flag.empty()
                      ? 0
                      : std::strtoull(seed_flag.c_str(), nullptr, 10);
  int64_t epochs =
      epochs_flag.empty() ? 2 : std::strtoll(epochs_flag.c_str(), nullptr, 10);
  if (epochs <= 0) {
    std::fprintf(stderr, "--epochs must be positive\n");
    return 1;
  }

  std::vector<std::string> selectors =
      selectors_flag.empty() ? cl::SelectorRegistry::Global().Names()
                             : SplitCommas(selectors_flag);
  std::vector<std::string> retrievals =
      retrievals_flag.empty()
          ? std::vector<std::string>{"uniform", "max-loss", "entropy"}
          : SplitCommas(retrievals_flag);
  std::vector<std::string> presets = presets_flag.empty()
                                         ? std::vector<std::string>{"easy",
                                                                    "hard"}
                                         : SplitCommas(presets_flag);
  std::vector<int64_t> budgets;
  for (const std::string& b :
       budgets_flag.empty() ? std::vector<std::string>{"4", "8"}
                            : SplitCommas(budgets_flag)) {
    int64_t budget = std::strtoll(b.c_str(), nullptr, 10);
    if (budget <= 0) {
      std::fprintf(stderr, "--budgets entries must be positive, got %s\n",
                   b.c_str());
      return 1;
    }
    budgets.push_back(budget);
  }

  // Validate every spec up front so one typo fails before hours of cells.
  for (const std::string& spec : selectors) {
    util::Result<std::unique_ptr<cl::DataSelector>> probe =
        cl::SelectorRegistry::Global().Create(spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--selectors: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
  }
  for (const std::string& spec : retrievals) {
    util::Result<std::unique_ptr<cl::RetrievalPolicy>> probe =
        cl::RetrievalRegistry::Global().Create(spec);
    if (!probe.ok()) {
      std::fprintf(stderr, "--retrievals: %s\n",
                   probe.status().message().c_str());
      return 1;
    }
  }
  for (const std::string& preset : presets) {
    if (preset != "easy" && preset != "hard") {
      std::fprintf(stderr, "--presets: unknown preset \"%s\" (easy, hard)\n",
                   preset.c_str());
      return 1;
    }
  }

  std::unique_ptr<obs::RunLogger> logger;
  if (!metrics_out.empty()) {
    logger = std::make_unique<obs::RunLogger>(metrics_out);
    if (!logger->ok()) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  // One task sequence per preset, shared by every cell of that preset so
  // selectors/retrievals compete on identical data.
  const int64_t kIncrements = 3;
  std::vector<data::TaskSequence> sequences;
  std::vector<int64_t> input_dims;
  for (const std::string& preset : presets) {
    data::SyntheticImageConfig config;
    config.name = "matrix-" + preset;
    config.num_classes = 6;
    config.train_per_class = 20;
    config.test_per_class = 8;
    config.geometry = {3, 8, 8};
    config.latent_dim = 12;
    config.seed = seed;
    if (preset == "hard") {
      // Entangled variant: close classes + style nuisance dimensions.
      config.class_separation = 1.2f;
      config.style_strength = 0.4f;
    }
    data::SyntheticImagePair pair = MakeSyntheticImageData(config);
    util::Rng split_rng(seed * 31 + 7);
    input_dims.push_back(pair.train.dim());
    sequences.push_back(data::TaskSequence::SplitByClasses(
        pair.train, pair.test, kIncrements, &split_rng));
  }

  int64_t total = static_cast<int64_t>(selectors.size() * retrievals.size() *
                                       presets.size() * budgets.size());
  std::printf("selection matrix: %zu selectors x %zu retrievals x %zu presets"
              " x %zu budgets = %lld cells\n",
              selectors.size(), retrievals.size(), presets.size(),
              budgets.size(), static_cast<long long>(total));

  int64_t cell = 0;
  for (size_t p = 0; p < presets.size(); ++p) {
    for (int64_t budget : budgets) {
      for (const std::string& selector : selectors) {
        for (const std::string& retrieval : retrievals) {
          cl::StrategyContext context;
          context.encoder.mlp_dims = {input_dims[p], 48, 48};
          context.encoder.projector_hidden = 48;
          context.encoder.representation_dim = 24;
          context.epochs = epochs;
          context.batch_size = 32;
          context.lr = 0.05f;
          context.weight_decay = 0.03f;
          context.memory_per_task = budget;
          // Smaller than any filled buffer (budget x increments), so the
          // retrieval policy is actually consulted instead of the k >= size
          // take-everything shortcut.
          context.replay_batch_size = 6;
          context.seed = seed;
          context.selector_spec = selector;
          context.retrieval_spec = retrieval;

          auto strategy =
              std::make_unique<core::Edsr>(context, core::EdsrOptions{});
          cl::ContinualRunResult result =
              cl::RunContinual(strategy.get(), sequences[p], {});

          // The achieved selection objective: Tr(Cov(f̂(M))) with the
          // paper's uncentered convention (Eq. 15) over the final buffer.
          double trace_cov = 0.0;
          const cl::MemoryBuffer& memory = strategy->memory();
          for (int64_t e = 0; e < memory.size(); ++e) {
            for (float v : memory.entry(e).stored_representation) {
              trace_cov += static_cast<double>(v) * static_cast<double>(v);
            }
          }

          ++cell;
          std::printf(
              "[%3lld/%lld] %-20s %-9s %-4s b=%-3lld acc=%5.1f%% "
              "fgt=%5.1f%% trace=%8.2f (%.2fs)\n",
              static_cast<long long>(cell), static_cast<long long>(total),
              selector.c_str(), retrieval.c_str(), presets[p].c_str(),
              static_cast<long long>(budget),
              result.matrix.FinalAcc() * 100.0,
              result.matrix.FinalFgt() * 100.0, trace_cov,
              result.train_seconds);

          if (logger != nullptr) {
            obs::Json record = obs::Json::Object();
            record.Set("record", "selection_matrix");
            record.Set("selector", selector);
            record.Set("retrieval", retrieval);
            record.Set("preset", presets[p]);
            record.Set("budget", budget);
            record.Set("seed", static_cast<int64_t>(seed));
            record.Set("epochs", epochs);
            record.Set("increments", kIncrements);
            record.Set("final_acc", result.matrix.FinalAcc());
            record.Set("final_fgt", result.matrix.FinalFgt());
            record.Set("trace_cov", trace_cov);
            record.Set("memory_size", memory.size());
            // Perf stays LAST: the validator's determinism contract strips
            // the record at ,"perf" when diffing runs.
            obs::Json perf = obs::Json::Object();
            perf.Set("train_seconds", result.train_seconds);
            perf.Set("eval_seconds", result.eval_seconds);
            record.Set("perf", std::move(perf));
            logger->Write(record);
          }
        }
      }
    }
  }
  return 0;
}
