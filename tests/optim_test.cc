// Tests for optimizers and LR schedules.
#include "src/optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

using tensor::Tensor;

// Minimizes f(x) = (x - target)^2 for `steps` iterations.
float RunQuadratic(optim::Optimizer* opt, Tensor x, float target, int steps) {
  float loss_value = 0.0f;
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Tensor loss = tensor::SumAll(tensor::Square(x - target));
    loss.Backward();
    opt->Step();
    loss_value = loss.item();
  }
  return loss_value;
}

TEST(Sgd, PlainGradientStep) {
  Tensor x = Tensor::FromVector({1.0f}, {1}, true);
  optim::SgdOptions options;
  options.lr = 0.1f;
  options.momentum = 0.0f;
  optim::Sgd sgd({x}, options);
  Tensor loss = tensor::SumAll(tensor::Square(x));  // grad = 2x = 2
  loss.Backward();
  sgd.Step();
  EXPECT_FLOAT_EQ(x.at(0), 1.0f - 0.1f * 2.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Tensor x = Tensor::FromVector({0.0f}, {1}, true);
  optim::SgdOptions options;
  options.lr = 0.1f;
  options.momentum = 0.9f;
  optim::Sgd sgd({x}, options);
  // Constant gradient 1: velocity should build up as 1, 1.9, ...
  x.mutable_grad()[0] = 1.0f;
  sgd.Step();
  EXPECT_NEAR(x.at(0), -0.1f, 1e-6f);
  x.ZeroGrad();
  x.mutable_grad()[0] = 1.0f;
  sgd.Step();
  EXPECT_NEAR(x.at(0), -0.1f - 0.1f * 1.9f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Tensor x = Tensor::FromVector({10.0f}, {1}, true);
  optim::SgdOptions options;
  options.lr = 0.1f;
  options.momentum = 0.0f;
  options.weight_decay = 0.5f;
  optim::Sgd sgd({x}, options);
  x.mutable_grad()[0] = 0.0f;  // pure decay
  sgd.Step();
  EXPECT_FLOAT_EQ(x.at(0), 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({5.0f}, {1}, true);
  optim::SgdOptions options;
  options.lr = 0.1f;
  optim::Sgd sgd({x}, options);
  float loss = RunQuadratic(&sgd, x, 3.0f, 100);
  EXPECT_LT(loss, 1e-4f);
  EXPECT_NEAR(x.at(0), 3.0f, 0.01f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({-4.0f}, {1}, true);
  optim::AdamOptions options;
  options.lr = 0.1f;
  optim::Adam adam({x}, options);
  float loss = RunQuadratic(&adam, x, 2.0f, 300);
  EXPECT_LT(loss, 1e-3f);
  EXPECT_NEAR(x.at(0), 2.0f, 0.05f);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam update is ~lr * sign(grad).
  Tensor x = Tensor::FromVector({0.0f}, {1}, true);
  optim::AdamOptions options;
  options.lr = 0.01f;
  optim::Adam adam({x}, options);
  x.mutable_grad()[0] = 123.0f;
  adam.Step();
  EXPECT_NEAR(x.at(0), -0.01f, 1e-5f);
}

TEST(Optimizer, ZeroGradClears) {
  Tensor x = Tensor::FromVector({1.0f, 2.0f}, {2}, true);
  optim::SgdOptions options;
  optim::Sgd sgd({x}, options);
  x.mutable_grad()[0] = 3.0f;
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(CosineLr, EndpointsAndMonotonicity) {
  optim::CosineLr sched(1.0f, 100, 0.1f);
  EXPECT_FLOAT_EQ(sched.At(0), 1.0f);
  EXPECT_NEAR(sched.At(100), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.At(50), 0.55f, 1e-3f);
  for (int s = 1; s <= 100; ++s) {
    EXPECT_LE(sched.At(s), sched.At(s - 1) + 1e-6f);
  }
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Tensor x = Tensor::FromVector({0.0f, 0.0f}, {2}, true);
  x.mutable_grad()[0] = 3.0f;
  x.mutable_grad()[1] = 4.0f;  // norm 5
  double norm = optim::ClipGradNorm({x}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-5);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-4f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-4f);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromVector({0.0f}, {1}, true);
  x.mutable_grad()[0] = 0.5f;
  optim::ClipGradNorm({x}, 1.0);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5f);
}

}  // namespace
}  // namespace edsr
