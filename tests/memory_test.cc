// Tests for the memory buffer.
#include "src/cl/memory.h"

#include <set>

#include <gtest/gtest.h>

namespace edsr {
namespace {

using cl::MemoryBuffer;
using cl::MemoryEntry;

MemoryEntry MakeEntry(int64_t task, float value, int64_t dim = 3) {
  MemoryEntry e;
  e.features.assign(dim, value);
  e.task_id = task;
  e.label = task;
  return e;
}

TEST(MemoryBuffer, AddAndQuery) {
  MemoryBuffer buffer(2);
  buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(0, 2.0f)});
  buffer.AddIncrement({MakeEntry(1, 3.0f)});
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_EQ(buffer.entry(2).task_id, 1);
  EXPECT_FLOAT_EQ(buffer.entry(1).features[0], 2.0f);
}

TEST(MemoryBuffer, BudgetEnforced) {
  MemoryBuffer buffer(1);
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(0, 2.0f)}),
               "budget");
}

TEST(MemoryBuffer, RejectsMixedTaskIncrement) {
  MemoryBuffer buffer(4);
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(1, 2.0f)}),
               "share a task id");
}

TEST(MemoryBuffer, RejectsDuplicateTask) {
  MemoryBuffer buffer(4);
  buffer.AddIncrement({MakeEntry(0, 1.0f)});
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 2.0f)}), "already stored");
}

TEST(MemoryBuffer, SampleWithoutReplacementWhenPossible) {
  MemoryBuffer buffer(5);
  buffer.AddIncrement({MakeEntry(0, 1), MakeEntry(0, 2), MakeEntry(0, 3),
                       MakeEntry(0, 4), MakeEntry(0, 5)});
  util::Rng rng(0);
  std::vector<int64_t> sample = buffer.SampleIndices(3, &rng);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
  // Requesting more than available returns everything.
  EXPECT_EQ(buffer.SampleIndices(99, &rng).size(), 5u);
}

TEST(MemoryBuffer, GatherFeaturesShape) {
  MemoryBuffer buffer(3);
  buffer.AddIncrement({MakeEntry(0, 1.5f), MakeEntry(0, 2.5f)});
  tensor::Tensor batch = buffer.GatherFeatures({1, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 3}));
  EXPECT_FLOAT_EQ(batch.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(batch.at(1, 2), 1.5f);
}

TEST(MemoryBuffer, SerializeRoundTripsEverySideChannel) {
  MemoryBuffer buffer(2);
  MemoryEntry a = MakeEntry(0, 1.0f);
  a.source_index = 7;
  a.noise_scale = {0.5f, 0.25f, 0.125f};
  a.stored_output = {1.0f, -1.0f};
  a.stored_representation = {0.3f, -0.6f, 0.9f, 1.2f};
  MemoryEntry b = MakeEntry(0, 2.0f);
  buffer.AddIncrement({a, b});

  io::BufferWriter out;
  buffer.Serialize(&out);
  MemoryBuffer restored(2);
  io::BufferReader in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  ASSERT_TRUE(in.ExpectEnd().ok());

  ASSERT_EQ(restored.size(), buffer.size());
  for (int64_t i = 0; i < buffer.size(); ++i) {
    const MemoryEntry& x = buffer.entry(i);
    const MemoryEntry& y = restored.entry(i);
    EXPECT_EQ(y.features, x.features) << "entry " << i;
    EXPECT_EQ(y.task_id, x.task_id) << "entry " << i;
    EXPECT_EQ(y.source_index, x.source_index) << "entry " << i;
    EXPECT_EQ(y.label, x.label) << "entry " << i;
    EXPECT_EQ(y.noise_scale, x.noise_scale) << "entry " << i;
    EXPECT_EQ(y.stored_output, x.stored_output) << "entry " << i;
    EXPECT_EQ(y.stored_representation, x.stored_representation)
        << "entry " << i;
  }
}

TEST(MemoryBuffer, GroupByTaskPartitions) {
  MemoryBuffer buffer(2);
  buffer.AddIncrement({MakeEntry(0, 1, 2), MakeEntry(0, 2, 2)});
  buffer.AddIncrement({MakeEntry(1, 3, 5)});  // different dim: fine per task
  auto groups = buffer.GroupByTask({0, 1, 2});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
  // Gathering across heterogeneous dims dies.
  EXPECT_DEATH(buffer.GatherFeatures({0, 2}), "homogeneous");
}

}  // namespace
}  // namespace edsr
