// Tests for the memory buffer.
#include "src/cl/memory.h"

#include <set>

#include <gtest/gtest.h>

namespace edsr {
namespace {

using cl::MemoryBuffer;
using cl::MemoryEntry;

MemoryEntry MakeEntry(int64_t task, float value, int64_t dim = 3) {
  MemoryEntry e;
  e.features.assign(dim, value);
  e.task_id = task;
  e.label = task;
  return e;
}

TEST(MemoryBuffer, AddAndQuery) {
  MemoryBuffer buffer(2);
  buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(0, 2.0f)});
  buffer.AddIncrement({MakeEntry(1, 3.0f)});
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_EQ(buffer.entry(2).task_id, 1);
  EXPECT_FLOAT_EQ(buffer.entry(1).features[0], 2.0f);
}

TEST(MemoryBuffer, BudgetEnforced) {
  MemoryBuffer buffer(1);
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(0, 2.0f)}),
               "budget");
}

TEST(MemoryBuffer, RejectsMixedTaskIncrement) {
  MemoryBuffer buffer(4);
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 1.0f), MakeEntry(1, 2.0f)}),
               "share a task id");
}

TEST(MemoryBuffer, RejectsDuplicateTask) {
  MemoryBuffer buffer(4);
  buffer.AddIncrement({MakeEntry(0, 1.0f)});
  EXPECT_DEATH(buffer.AddIncrement({MakeEntry(0, 2.0f)}), "already stored");
}

TEST(MemoryBuffer, SampleWithoutReplacementWhenPossible) {
  MemoryBuffer buffer(5);
  buffer.AddIncrement({MakeEntry(0, 1), MakeEntry(0, 2), MakeEntry(0, 3),
                       MakeEntry(0, 4), MakeEntry(0, 5)});
  util::Rng rng(0);
  std::vector<int64_t> sample = buffer.SampleIndices(3, &rng);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
  // Requesting more than available returns everything.
  EXPECT_EQ(buffer.SampleIndices(99, &rng).size(), 5u);
}

TEST(MemoryBuffer, GatherFeaturesShape) {
  MemoryBuffer buffer(3);
  buffer.AddIncrement({MakeEntry(0, 1.5f), MakeEntry(0, 2.5f)});
  tensor::Tensor batch = buffer.GatherFeatures({1, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 3}));
  EXPECT_FLOAT_EQ(batch.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(batch.at(1, 2), 1.5f);
}

TEST(MemoryBuffer, GroupByTaskPartitions) {
  MemoryBuffer buffer(2);
  buffer.AddIncrement({MakeEntry(0, 1, 2), MakeEntry(0, 2, 2)});
  buffer.AddIncrement({MakeEntry(1, 3, 5)});  // different dim: fine per task
  auto groups = buffer.GroupByTask({0, 1, 2});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
  // Gathering across heterogeneous dims dies.
  EXPECT_DEATH(buffer.GatherFeatures({0, 2}), "homogeneous");
}

}  // namespace
}  // namespace edsr
