// Tests for the extension modules: new tensor ops, BYOL + EMA, A-GEM,
// reservoir buffer, and clustering metrics.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/cl/agem.h"
#include "src/cl/reservoir.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"
#include "src/eval/cluster_metrics.h"
#include "src/ssl/byol.h"
#include "src/ssl/encoder.h"
#include "src/tensor/ops.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using tensor::Tensor;

// ---- New tensor ops ----------------------------------------------------

TEST(ExtOps, LeakyReluForwardAndGrad) {
  Tensor a = Tensor::FromVector({-2.0f, -0.5f, 0.5f, 2.0f}, {4}, true);
  Tensor y = tensor::LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(y.at(0), -0.2f);
  EXPECT_FLOAT_EQ(y.at(2), 0.5f);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::Square(tensor::LeakyRelu(a, 0.1f))); },
      {a});
}

TEST(ExtOps, GeluValuesAndGrad) {
  Tensor a = Tensor::FromVector({-1.0f, 0.0f, 1.0f, 2.0f}, {4}, true);
  Tensor y = tensor::Gelu(a);
  EXPECT_NEAR(y.at(1), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at(2), 0.8412f, 1e-3f);  // known GELU(1)
  EXPECT_NEAR(y.at(0), -0.1588f, 1e-3f);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::Gelu(a)); }, {a});
}

TEST(ExtOps, ClampForwardAndGradInsideOnly) {
  Tensor a = Tensor::FromVector({-3.0f, 0.5f, 3.0f}, {3}, true);
  Tensor y = tensor::Clamp(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(y.at(0), -1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.5f);
  EXPECT_FLOAT_EQ(y.at(2), 1.0f);
  tensor::SumAll(y).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 0.0f);
}

TEST(ExtOps, ReduceMinMatchesNegatedMax) {
  Tensor a = Tensor::FromVector({3, 1, 2, -5, 0, 4}, {2, 3});
  Tensor m = tensor::ReduceMin(a, 1);
  EXPECT_FLOAT_EQ(m.at(0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1), -5.0f);
}

TEST(ExtOps, DropoutStatistics) {
  util::Rng rng(1);
  Tensor a = Tensor::Ones({4000});
  Tensor y = tensor::Dropout(a, 0.25f, &rng);
  int64_t zeros = 0;
  double sum = 0.0;
  for (float v : y.data()) {
    if (v == 0.0f) ++zeros;
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 4000, 0.25, 0.03);
  // Inverted scaling keeps the expectation.
  EXPECT_NEAR(sum / 4000, 1.0, 0.05);
  // p = 0 is the identity.
  Tensor id = tensor::Dropout(a, 0.0f, &rng);
  EXPECT_FLOAT_EQ(id.at(17), 1.0f);
}

// ---- BYOL + EMA -----------------------------------------------------------

TEST(EmaTracker, HardCopyThenDecay) {
  util::Rng rng1(2), rng2(3);
  nn::Mlp online({4, 6}, &rng1);
  nn::Mlp target({4, 6}, &rng2);
  ssl::EmaTracker ema(&online, &target, 0.9f);
  ema.HardCopy();
  float before = target.NamedState()[0].value.at(0);
  EXPECT_FLOAT_EQ(before, online.NamedState()[0].value.at(0));
  // Move online; target should travel 10% of the way per update.
  online.NamedState()[0].value.mutable_data()[0] = before + 1.0f;
  ema.Update();
  EXPECT_NEAR(target.NamedState()[0].value.at(0), before + 0.1f, 1e-5f);
  ema.Update();
  EXPECT_NEAR(target.NamedState()[0].value.at(0), before + 0.19f, 1e-5f);
}

TEST(ByolLoss, ZeroWhenPredictorMatchesTarget) {
  // The loss is 2 - 2cos(h(z), t) per term; bounded in [0, 4].
  util::Rng rng(4);
  ssl::ByolLoss loss(6, 6, &rng);
  Tensor z1 = Tensor::Randn({5, 6}, &rng);
  Tensor z2 = Tensor::Randn({5, 6}, &rng);
  float v = loss.Loss(z1, z2, z1, z2).item();
  EXPECT_GE(v, 0.0f);
  EXPECT_LE(v, 4.0f);
}

TEST(ByolLoss, TrainingDecreasesLossWithEmaTarget) {
  util::Rng rng(5);
  ssl::EncoderConfig config;
  config.mlp_dims = {8, 16, 16};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  auto online = ssl::Encoder::Make(config, &rng);
  auto target = ssl::Encoder::Make(config, &rng);
  ssl::EmaTracker ema(online.get(), target.get(), 0.95f);
  ema.HardCopy();
  target->SetRequiresGrad(false);
  target->SetTraining(false);
  ssl::ByolLoss loss(8, 8, &rng);

  std::vector<Tensor> params = online->Parameters();
  for (const Tensor& p : loss.Parameters()) params.push_back(p);
  optim::SgdOptions opt;
  opt.lr = 0.05f;
  optim::Sgd sgd(params, opt);

  Tensor anchors = Tensor::Randn({16, 8}, &rng);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 50; ++step) {
    Tensor v1 = anchors + Tensor::Randn({16, 8}, &rng, 0.0f, 0.05f);
    Tensor v2 = anchors + Tensor::Randn({16, 8}, &rng, 0.0f, 0.05f);
    sgd.ZeroGrad();
    Tensor l = loss.Loss(online->Forward(v1), online->Forward(v2),
                         target->Forward(v1), target->Forward(v2));
    l.Backward();
    sgd.Step();
    ema.Update();
    if (step == 0) first = l.item();
    last = l.item();
  }
  EXPECT_LT(last, first);
}

// ---- A-GEM -------------------------------------------------------------------

TEST(Agem, StoresMemoryAndProjectsConflicts) {
  data::SyntheticImageConfig config;
  config.name = "agem";
  config.num_classes = 4;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 1.2f;
  config.seed = 6;
  auto pair = MakeSyntheticImageData(config);
  auto seq = data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);

  cl::StrategyContext context;
  context.encoder.mlp_dims = {48, 24, 24};
  context.encoder.projector_hidden = 24;
  context.encoder.representation_dim = 12;
  context.epochs = 4;
  context.batch_size = 16;
  context.weight_decay = 0.02f;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = 7;

  cl::Agem strategy(context);
  cl::ContinualRunResult result = cl::RunContinual(&strategy, seq, {});
  EXPECT_EQ(strategy.memory().size(), 16);
  EXPECT_GE(result.matrix.FinalAcc(), 0.3);
  // Whether updates get projected is data-dependent (it needs a genuine
  // gradient conflict); the invariant is that the counter never underflows
  // and the run completes with the reference-gradient machinery active.
  EXPECT_GE(strategy.projections(), 0);
}

// ---- ReservoirBuffer ---------------------------------------------------------

TEST(ReservoirBuffer, FillsThenMaintainsCapacity) {
  cl::ReservoirBuffer buffer(10);
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    cl::MemoryEntry entry;
    entry.features = {static_cast<float>(i)};
    entry.task_id = i / 20;
    buffer.Offer(std::move(entry), &rng);
  }
  EXPECT_EQ(buffer.size(), 10);
  EXPECT_EQ(buffer.observed(), 100);
}

TEST(ReservoirBuffer, ApproximatelyUniformOverStream) {
  // Each of 200 offered samples should survive with probability ~10/200.
  // Aggregate over many independent reservoirs and check the first-half /
  // second-half balance.
  int64_t first_half = 0, total = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    cl::ReservoirBuffer buffer(10);
    util::Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      cl::MemoryEntry entry;
      entry.features = {static_cast<float>(i)};
      buffer.Offer(std::move(entry), &rng);
    }
    for (const auto& e : buffer.entries()) {
      if (e.features[0] < 100.0f) ++first_half;
      ++total;
    }
  }
  double fraction = static_cast<double>(first_half) / total;
  EXPECT_NEAR(fraction, 0.5, 0.08);
}

TEST(ReservoirBuffer, GatherAndSample) {
  cl::ReservoirBuffer buffer(4);
  util::Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    cl::MemoryEntry entry;
    entry.features = {static_cast<float>(i), 0.0f};
    buffer.Offer(std::move(entry), &rng);
  }
  Tensor batch = buffer.GatherFeatures({2, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0, 0), 2.0f);
  std::vector<int64_t> sample = buffer.SampleIndices(3, &rng);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
}

// ---- Clustering metrics ----------------------------------------------------------

TEST(ClusterMetrics, PerfectClusteringScoresOne) {
  std::vector<int64_t> assignment = {0, 0, 1, 1, 2, 2};
  std::vector<int64_t> labels = {2, 2, 0, 0, 1, 1};  // relabeled but aligned
  eval::ClusterScores scores =
      eval::ScoreClustering(assignment, labels, 3, 3);
  EXPECT_DOUBLE_EQ(scores.purity, 1.0);
  EXPECT_NEAR(scores.nmi, 1.0, 1e-9);
}

TEST(ClusterMetrics, RandomClusteringScoresLow) {
  util::Rng rng(10);
  std::vector<int64_t> assignment(600), labels(600);
  for (int i = 0; i < 600; ++i) {
    assignment[i] = rng.UniformInt(0, 3);
    labels[i] = rng.UniformInt(0, 3);
  }
  eval::ClusterScores scores =
      eval::ScoreClustering(assignment, labels, 4, 4);
  EXPECT_LT(scores.nmi, 0.1);
  EXPECT_LT(scores.purity, 0.45);
}

TEST(ClusterMetrics, KMeansRecoversSeparatedClusters) {
  util::Rng rng(11);
  int64_t per = 40, d = 4;
  eval::RepresentationMatrix reps;
  reps.n = 3 * per;
  reps.d = d;
  reps.values.resize(reps.n * d);
  std::vector<int64_t> labels(reps.n);
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < per; ++i) {
      int64_t row = c * per + i;
      labels[row] = c;
      for (int64_t j = 0; j < d; ++j) {
        reps.values[row * d + j] =
            (j == c ? 5.0f : 0.0f) + rng.Normal(0.0f, 0.3f);
      }
    }
  }
  eval::ClusterScores scores =
      eval::KMeansClusterScores(reps, labels, 3, 3, &rng);
  EXPECT_GT(scores.purity, 0.95);
  EXPECT_GT(scores.nmi, 0.9);
}

}  // namespace
}  // namespace edsr
