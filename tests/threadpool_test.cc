// Tests for the work-stealing intra-op threadpool: coverage/partitioning,
// stealing under imbalance, exception propagation, nested-region inlining,
// and per-worker arena isolation.
#include "src/util/threadpool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/arena.h"

namespace edsr {
namespace {

// Restores the global pool size after each test.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : threads_(util::ThreadPool::Global().NumThreads()) {}
  ~PoolSizeGuard() {
    util::ThreadPool::Global().SetNumThreadsForTesting(threads_);
  }

 private:
  int threads_;
};

TEST(ThreadPool, DefaultsToSingleThread) {
  // EDSR_NUM_THREADS is unset in the test environment; the pool must be a
  // plain inline call (the bit-exactness guarantee for everything else).
  PoolSizeGuard guard;
  EXPECT_GE(util::ThreadPool::Global().NumThreads(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  PoolSizeGuard guard;
  for (int threads : {1, 2, 4}) {
    util::ThreadPool::Global().SetNumThreadsForTesting(threads);
    for (int64_t total : {1, 7, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 2000}) {
        std::vector<std::atomic<int>> hits(total);
        for (auto& h : hits) h.store(0, std::memory_order_relaxed);
        util::ParallelFor(0, total, grain, [&](int64_t b, int64_t e) {
          ASSERT_LT(b, e);
          for (int64_t i = b; i < e; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
        for (int64_t i = 0; i < total; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " total=" << total
              << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(2);
  int calls = 0;
  util::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  util::ParallelFor(5, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, StealsWorkUnderImbalance) {
  // All chunks start on the round-robin queues, but the first chunk sleeps;
  // the remaining chunks can only finish promptly if other participants
  // steal them. Count distinct executing threads as evidence.
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(4);
  std::atomic<int64_t> done{0};
  std::vector<std::thread::id> ids(64);
  util::ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    if (b == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    for (int64_t i = b; i < e; ++i) ids[i] = std::this_thread::get_id();
    done.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64);
  // On a multi-core host several threads participate; on a 1-core runner
  // the scheduler may still serialize onto one. Only assert completion and
  // that every chunk ran on *some* thread.
  for (const auto& id : ids) EXPECT_NE(id, std::thread::id());
}

TEST(ThreadPool, PropagatesFirstExceptionAndSurvives) {
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(4);
  std::atomic<int64_t> ran{0};
  try {
    util::ParallelFor(0, 100, 1, [&](int64_t b, int64_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (b == 37) throw std::runtime_error("chunk 37 failed");
    });
    FAIL() << "expected the chunk exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "chunk 37 failed");
  }
  // The region drained (remaining tasks still ran) and the pool is usable.
  EXPECT_EQ(ran.load(), 100);
  std::atomic<int64_t> after{0};
  util::ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    after.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(4);
  EXPECT_FALSE(util::ThreadPool::InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  util::ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(util::ThreadPool::InParallelRegion());
    // Nested region: must run inline on this worker without deadlocking.
    int64_t local = 0;
    util::ParallelFor(0, 16, 1, [&](int64_t b, int64_t e) {
      local += e - b;
    });
    EXPECT_EQ(local, 16);
    inner_total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
  EXPECT_FALSE(util::ThreadPool::InParallelRegion());
}

TEST(ThreadPool, WorkersHaveIsolatedArenas) {
  // Each chunk opens its own arena::Scope and hammers its private scratch;
  // a shared or clobbered arena would corrupt the written patterns (and
  // trip ASan poisoning in the sanitize preset).
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(4);
  std::atomic<int64_t> bad{0};
  util::ParallelFor(0, 32, 1, [&](int64_t b, int64_t e) {
    for (int64_t chunk = b; chunk < e; ++chunk) {
      tensor::arena::Scope scope;
      const int64_t n = 1024;
      float* scratch = tensor::arena::AllocFloats(n);
      const float tag = static_cast<float>(chunk + 1);
      for (int64_t i = 0; i < n; ++i) scratch[i] = tag;
      std::this_thread::yield();
      for (int64_t i = 0; i < n; ++i) {
        if (scratch[i] != tag) bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, ConcurrentExternalCallersBothComplete) {
  // Two plain threads entering ParallelFor at once: one wins the pool, the
  // other must run inline — both finish with full coverage.
  PoolSizeGuard guard;
  util::ThreadPool::Global().SetNumThreadsForTesting(4);
  std::atomic<int64_t> total{0};
  auto body = [&] {
    util::ParallelFor(0, 500, 1, [&](int64_t b, int64_t e) {
      total.fetch_add(e - b, std::memory_order_relaxed);
    });
  };
  std::thread t1(body);
  std::thread t2(body);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ResizeJoinsAndRespawns) {
  PoolSizeGuard guard;
  auto& pool = util::ThreadPool::Global();
  for (int threads : {1, 3, 1, 4, 2}) {
    pool.SetNumThreadsForTesting(threads);
    EXPECT_EQ(pool.NumThreads(), threads);
    std::atomic<int64_t> sum{0};
    util::ParallelFor(0, 64, 4, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace edsr
