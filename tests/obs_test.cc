// Tests for the telemetry subsystem: ordered JSON round-trips, the metrics
// registry (sharded counters, gauges, histograms, callback gauges), trace
// span nesting/aggregation and the disabled-mode zero-allocation guarantee,
// and the JSONL run-record sink.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/exporter.h"
#include "src/obs/flight.h"
#include "src/obs/histo.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/run_record.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/tensor/arena.h"

// The replacement operator new below intentionally pairs malloc with the
// (also replaced) free-based operator delete; GCC can't see the pairing
// through inlining and warns.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// Global allocation counter for the zero-allocation tests. Counting every
// new in the binary is crude but sufficient: the guarded regions make no
// library calls, so any increment is theirs.
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace edsr {
namespace {

using obs::Json;
using obs::MetricsRegistry;
using obs::RunLogger;
using obs::Tracer;

std::string TestPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- Json -----------------------------------------------------------------

TEST(Json, ObjectsKeepInsertionOrderAndOverwriteInPlace) {
  Json j = Json::Object();
  j.Set("b", 1).Set("a", 2).Set("c", 3);
  j.Set("a", 9);  // overwrite must keep position, not move to the end
  EXPECT_EQ(j.Dump(), "{\"b\":1,\"a\":9,\"c\":3}");
}

TEST(Json, DoublesRoundTripBitExactly) {
  const double values[] = {0.1, 1.0 / 3.0, -2.5e-17, 1e300, 195.375};
  for (double v : values) {
    Json j = Json::Object();
    j.Set("v", v);
    Json parsed;
    ASSERT_TRUE(Json::Parse(j.Dump(), &parsed)) << j.Dump();
    EXPECT_EQ(parsed.Find("v")->AsDouble(), v);
    // Re-serializing must be byte-identical (run records are diffed as text).
    EXPECT_EQ(parsed.Dump(), j.Dump());
  }
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  Json j = Json::Array();
  j.Push(Json::Number(std::nan("")));
  j.Push(Json::Number(HUGE_VAL));
  EXPECT_EQ(j.Dump(), "[null,null]");
}

TEST(Json, StringsEscapeControlCharacters) {
  Json j = Json::Str("a\"b\\c\nd\te\x01");
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  Json parsed;
  ASSERT_TRUE(Json::Parse(j.Dump(), &parsed));
  EXPECT_EQ(parsed.AsString(), "a\"b\\c\nd\te\x01");
}

TEST(Json, ParseRejectsMalformedDocuments) {
  Json out;
  EXPECT_FALSE(Json::Parse("{\"a\":}", &out));
  EXPECT_FALSE(Json::Parse("[1,2", &out));
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing", &out));
  EXPECT_FALSE(Json::Parse("", &out));
}

TEST(Json, NestedRecordRoundTrip) {
  // The shape of an increment run record.
  Json record = Json::Object();
  record.Set("record", "increment");
  record.Set("increment", int64_t{3});
  Json stats = Json::Object();
  stats.Set("selection_trace_cov", 149.52171968471353);
  record.Set("stats", std::move(stats));
  Json row = Json::Array();
  row.Push(Json::Number(0.84)).Push(Json::Number(0.72));
  record.Set("row", std::move(row));

  Json parsed;
  ASSERT_TRUE(Json::Parse(record.Dump(), &parsed));
  EXPECT_EQ(parsed.Find("record")->AsString(), "increment");
  EXPECT_EQ(parsed.Find("increment")->AsInt(), 3);
  EXPECT_EQ(parsed.Find("stats")->Find("selection_trace_cov")->AsDouble(),
            149.52171968471353);
  EXPECT_EQ(parsed.Find("row")->size(), 2);
  EXPECT_EQ(parsed.Find("row")->at(1).AsDouble(), 0.72);
  EXPECT_EQ(parsed.Dump(), record.Dump());
}

// ---- Metrics --------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  obs::Counter* counter =
      MetricsRegistry::Global().GetCounter("test.obs.counter");
  counter->Reset();
  EDSR_METRIC_COUNT("test.obs.counter", 5);
  EDSR_METRIC_COUNT("test.obs.counter", 7);
  EXPECT_EQ(counter->Value(), 12);
  EXPECT_EQ(MetricsRegistry::Global().Value("test.obs.counter"), 12.0);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
}

TEST(Metrics, GetCounterReturnsTheSameInstance) {
  obs::Counter* a = MetricsRegistry::Global().GetCounter("test.obs.same");
  obs::Counter* b = MetricsRegistry::Global().GetCounter("test.obs.same");
  EXPECT_EQ(a, b);
}

TEST(Metrics, GaugeStoresDoubles) {
  obs::Gauge* gauge = MetricsRegistry::Global().GetGauge("test.obs.gauge");
  gauge->Set(3.25);
  EXPECT_EQ(gauge->Value(), 3.25);
  gauge->Set(-1e-9);
  EXPECT_EQ(MetricsRegistry::Global().Value("test.obs.gauge"), -1e-9);
}

TEST(Metrics, CallbackGaugeEvaluatesOnRead) {
  double source = 1.0;
  MetricsRegistry::Global().RegisterCallbackGauge(
      "test.obs.callback", [&source] { return source; });
  EXPECT_EQ(MetricsRegistry::Global().Value("test.obs.callback"), 1.0);
  source = 42.0;
  EXPECT_EQ(MetricsRegistry::Global().Value("test.obs.callback"), 42.0);
  // Re-registering replaces (the arena registers idempotently).
  MetricsRegistry::Global().RegisterCallbackGauge("test.obs.callback",
                                                  [] { return -1.0; });
  EXPECT_EQ(MetricsRegistry::Global().Value("test.obs.callback"), -1.0);
}

TEST(Metrics, HistogramSnapshotsSummaryStatistics) {
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.obs.hist");
  hist->Reset();
  for (int i = 1; i <= 100; ++i) hist->Observe(static_cast<double>(i));
  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 5050.0);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 100.0);
  EXPECT_EQ(snap.Mean(), 50.5);
  // Log2 buckets: the median of 1..100 lands in the (32, 64] bucket.
  EXPECT_GE(snap.Quantile(0.5), 32.0);
  EXPECT_LE(snap.Quantile(0.5), 64.0);
  hist->Reset();
  EXPECT_EQ(hist->Snap().count, 0);
}

TEST(Metrics, ArenaGaugesAreRegistered) {
  // arena.cc registers its stats as callback gauges at static-init time.
  // Touch the arena so the linker keeps its object file (and with it the
  // registration initializer) in this otherwise tensor-free binary.
  tensor::arena::Stats();
  EXPECT_TRUE(MetricsRegistry::Global().Has("arena.pool_hits"));
  EXPECT_TRUE(MetricsRegistry::Global().Has("arena.pooled_bytes"));
  EXPECT_EQ(MetricsRegistry::Global().Value("arena.pooled_bytes"),
            static_cast<double>(tensor::arena::PooledBytes()));
}

TEST(Metrics, ToJsonCoversAllKinds) {
  MetricsRegistry::Global().GetCounter("test.obs.tojson.counter")->Add(3);
  MetricsRegistry::Global().GetGauge("test.obs.tojson.gauge")->Set(1.5);
  Json snapshot = MetricsRegistry::Global().ToJson();
  ASSERT_TRUE(snapshot.Find("counters") != nullptr);
  ASSERT_TRUE(snapshot.Find("gauges") != nullptr);
  ASSERT_TRUE(snapshot.Find("histograms") != nullptr);
  EXPECT_GE(snapshot.Find("counters")->Find("test.obs.tojson.counter")
                ->AsInt(), 3);
  EXPECT_EQ(snapshot.Find("gauges")->Find("test.obs.tojson.gauge")->AsDouble(),
            1.5);
  // A parse of the dump must succeed (this object feeds run records).
  Json parsed;
  EXPECT_TRUE(Json::Parse(snapshot.Dump(), &parsed));
}

// ---- Trace spans ----------------------------------------------------------

TEST(Trace, NestedSpansAggregateByPath) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  for (int i = 0; i < 3; ++i) {
    EDSR_TRACE_SPAN("obs_test_outer");
    for (int j = 0; j < 2; ++j) {
      EDSR_TRACE_SPAN("obs_test_inner");
    }
  }
  Tracer::SetEnabled(false);

  bool saw_outer = false;
  bool saw_inner = false;
  for (const Tracer::SpanStats& stats : Tracer::Summary()) {
    if (stats.path == "obs_test_outer") {
      saw_outer = true;
      EXPECT_EQ(stats.count, 3);
      EXPECT_GE(stats.total_ms, 0.0);
      EXPECT_LE(stats.min_ms, stats.max_ms);
    } else if (stats.path == "obs_test_outer/obs_test_inner") {
      saw_inner = true;
      EXPECT_EQ(stats.count, 6);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  Tracer::Reset();
}

TEST(Trace, ResetZeroesAggregation) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  {
    EDSR_TRACE_SPAN("obs_test_reset");
  }
  Tracer::SetEnabled(false);
  Tracer::Reset();
  for (const Tracer::SpanStats& stats : Tracer::Summary()) {
    EXPECT_NE(stats.path, "obs_test_reset") << "zero-count span reported";
  }
}

TEST(Trace, SummaryJsonIsWellFormed) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  {
    EDSR_TRACE_SPAN("obs_test_json");
  }
  Tracer::SetEnabled(false);
  Json summary = Tracer::SummaryJson();
  ASSERT_TRUE(summary.is_array());
  ASSERT_GE(summary.size(), 1);
  const Json& entry = summary.at(0);
  EXPECT_TRUE(entry.Has("path"));
  EXPECT_TRUE(entry.Has("count"));
  EXPECT_TRUE(entry.Has("total_ms"));
  EXPECT_TRUE(entry.Has("min_ms"));
  EXPECT_TRUE(entry.Has("max_ms"));
  Tracer::Reset();
}

TEST(Trace, ChromeTraceRecordsCompleteEvents) {
  Tracer::SetEnabled(true);
  Tracer::SetEventRecording(true);
  Tracer::Reset();
  {
    EDSR_TRACE_SPAN("obs_test_event");
  }
  Tracer::SetEventRecording(false);
  Tracer::SetEnabled(false);

  Json trace = Tracer::ChromeTraceJson();
  const Json* events = trace.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  bool found = false;
  for (int64_t i = 0; i < events->size(); ++i) {
    const Json& event = events->at(i);
    if (event.Find("name")->AsString() != "obs_test_event") continue;
    found = true;
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_GE(event.Find("dur")->AsDouble(), 0.0);
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
  }
  EXPECT_TRUE(found);

  std::string path = TestPath("obs_trace.json");
  Tracer::WriteChromeTrace(path).Check();
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Json parsed;
  EXPECT_TRUE(Json::Parse(text, &parsed));
  EXPECT_TRUE(parsed.Has("traceEvents"));
  std::remove(path.c_str());
  Tracer::Reset();
}

TEST(Trace, DisabledSpansDoNotAllocate) {
  Tracer::SetEnabled(false);
  int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    EDSR_TRACE_SPAN("obs_test_noalloc");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "runtime-disabled spans must be allocation-free";
}

TEST(Trace, EnabledSpansDoNotAllocateAfterWarmup) {
  Tracer::SetEnabled(true);
  {
    EDSR_TRACE_SPAN("obs_test_warm");  // creates the node once
  }
  int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    EDSR_TRACE_SPAN("obs_test_warm");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "steady-state enabled spans must be allocation-free";
  Tracer::SetEnabled(false);
  Tracer::Reset();
}

// ---- RunLogger ------------------------------------------------------------

TEST(RunLogger, WritesOneParseableLinePerRecord) {
  std::string path = TestPath("obs_records.jsonl");
  std::remove(path.c_str());
  {
    RunLogger logger(path);
    ASSERT_TRUE(logger.ok());
    for (int i = 0; i < 3; ++i) {
      Json record = Json::Object();
      record.Set("record", "epoch");
      record.Set("epoch", i);
      ASSERT_TRUE(logger.Write(record));
    }
    EXPECT_EQ(logger.lines_written(), 3);
  }
  std::ifstream in(path);
  std::string line;
  int64_t lines = 0;
  while (std::getline(in, line)) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(line, &parsed)) << line;
    EXPECT_EQ(parsed.Find("epoch")->AsInt(), lines);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(RunLogger, AppendsAcrossReopens) {
  // The resume path: a second process opens the same file and continues.
  std::string path = TestPath("obs_append.jsonl");
  std::remove(path.c_str());
  {
    RunLogger first(path);
    Json record = Json::Object();
    record.Set("n", 1);
    first.Write(record);
  }
  {
    RunLogger second(path);
    Json record = Json::Object();
    record.Set("n", 2);
    second.Write(record);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<int64_t> values;
  while (std::getline(in, line)) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(line, &parsed));
    values.push_back(parsed.Find("n")->AsInt());
  }
  EXPECT_EQ(values, (std::vector<int64_t>{1, 2}));
  std::remove(path.c_str());
}

TEST(RunLogger, UnopenableFileIsNotOkAndWriteIsNoop) {
  RunLogger logger("/nonexistent_dir_obs_test/x.jsonl");
  EXPECT_FALSE(logger.ok());
  Json record = Json::Object();
  EXPECT_FALSE(logger.Write(record));
  EXPECT_EQ(logger.lines_written(), 0);
}

// ---- LatencyHisto ---------------------------------------------------------

TEST(LatencyHisto, BucketBoundsAreConsistent) {
  using obs::LatencyHisto;
  // Every bucket's lower bound must map back to that bucket, and bounds
  // must be non-decreasing — the walk the quantile query relies on.
  for (int b = 0; b < LatencyHisto::kNumBuckets; ++b) {
    int64_t lo = LatencyHisto::BucketLowerBound(b);
    EXPECT_EQ(LatencyHisto::BucketFor(lo), b) << "bucket " << b;
    EXPECT_LE(lo, LatencyHisto::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_EQ(LatencyHisto::BucketLowerBound(b),
                LatencyHisto::BucketUpperBound(b - 1) + 1);
    }
  }
  // Values beyond the range clamp into the last bucket instead of indexing
  // out of bounds.
  EXPECT_EQ(LatencyHisto::BucketFor(INT64_MAX), LatencyHisto::kNumBuckets - 1);
}

TEST(LatencyHisto, SmallValuesAreExact) {
  obs::LatencyHisto* histo =
      MetricsRegistry::Global().GetLatencyHisto("test.lat.exact");
  histo->Reset();
  // Values below kSubCount (32) get one bucket each: percentiles are exact.
  for (int64_t us = 0; us < 32; ++us) histo->Record(us);
  obs::LatencyHisto::Snapshot snap = histo->Snap();
  EXPECT_EQ(snap.count, 32);
  EXPECT_EQ(snap.Quantile(0.5), 16);  // first value with cumulative > half
  EXPECT_EQ(snap.Quantile(0.0), 0);
  EXPECT_EQ(snap.Quantile(1.0), 31);
  histo->Reset();
  EXPECT_EQ(histo->Snap().count, 0);
}

TEST(LatencyHisto, LargeValuesStayWithinRelativeErrorBound) {
  obs::LatencyHisto* histo =
      MetricsRegistry::Global().GetLatencyHisto("test.lat.relerr");
  histo->Reset();
  // 32 linear sub-buckets per power of two bound the relative error of any
  // percentile at 1/32 ~= 3.2%.
  const int64_t values[] = {1000, 10000, 123456, 999999, 5000000, 2000000000};
  for (int64_t v : values) {
    histo->Reset();
    histo->Record(v);
    int64_t p99 = histo->Snap().Quantile(0.99);
    EXPECT_GE(p99, v) << v;  // bucket upper bound never under-reports
    EXPECT_LE(static_cast<double>(p99 - v), 0.033 * static_cast<double>(v))
        << v;
  }
}

TEST(LatencyHisto, QuantileIsCappedByObservedMax) {
  obs::LatencyHisto* histo =
      MetricsRegistry::Global().GetLatencyHisto("test.lat.maxcap");
  histo->Reset();
  histo->Record(1000);
  // The p100 never exceeds the true max even though the bucket is coarser.
  EXPECT_EQ(histo->Snap().Quantile(1.0), 1000);
  EXPECT_EQ(histo->Snap().max_us, 1000);
}

TEST(LatencyHisto, ConcurrentRecordsAllLand) {
  obs::LatencyHisto* histo =
      MetricsRegistry::Global().GetLatencyHisto("test.lat.mt");
  histo->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histo, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histo->Record(static_cast<int64_t>(t) * 100 + i % 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::LatencyHisto::Snapshot snap = histo->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  histo->Reset();
}

// ---- Histogram edge cases -------------------------------------------------

TEST(Histogram, ZeroGetsItsOwnBucket) {
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.obs.zero");
  hist->Reset();
  hist->Observe(0.0);
  hist->Observe(0.0);
  hist->Observe(8.0);
  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.buckets[0], 2);  // bucket 0 is exactly zero
  EXPECT_EQ(snap.min, 0.0);
  // The zero observations must not drag the median estimate negative or
  // into a fractional bucket: p50 is the zero bucket's bound, exactly 0.
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  hist->Reset();
}

TEST(Histogram, NegativeObservationAborts) {
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.obs.negative");
  EXPECT_DEATH(hist->Observe(-1.0), "negative or NaN");
}

// ---- Registry histogram bridge --------------------------------------------

TEST(Metrics, HistogramStatsBridgeThroughValue) {
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.obs.bridge");
  hist->Reset();
  for (int i = 1; i <= 10; ++i) hist->Observe(static_cast<double>(i));
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_TRUE(registry.Has("test.obs.bridge"));
  EXPECT_TRUE(registry.Has("test.obs.bridge.count"));
  EXPECT_EQ(registry.Value("test.obs.bridge.count"), 10.0);
  EXPECT_EQ(registry.Value("test.obs.bridge.sum"), 55.0);
  EXPECT_EQ(registry.Value("test.obs.bridge.mean"), 5.5);
  EXPECT_EQ(registry.Value("test.obs.bridge.min"), 1.0);
  EXPECT_EQ(registry.Value("test.obs.bridge.max"), 10.0);
  EXPECT_GT(registry.Value("test.obs.bridge.p99"), 0.0);
  hist->Reset();
}

TEST(Metrics, LatencyHistoStatsBridgeThroughValue) {
  obs::LatencyHisto* histo =
      MetricsRegistry::Global().GetLatencyHisto("test.lat.bridge");
  histo->Reset();
  for (int64_t us = 1; us <= 100; ++us) histo->Record(us);
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_TRUE(registry.Has("test.lat.bridge.p99"));
  EXPECT_EQ(registry.Value("test.lat.bridge.count"), 100.0);
  EXPECT_EQ(registry.Value("test.lat.bridge.p50"), 51.0);
  EXPECT_EQ(registry.Value("test.lat.bridge.p999"), 100.0);
  histo->Reset();
}

TEST(Metrics, PrometheusTextCoversAllKinds) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.obs.prom.counter")->Add(2);
  registry.GetGauge("test.obs.prom.gauge")->Set(0.5);
  obs::LatencyHisto* histo = registry.GetLatencyHisto("test.lat.prom");
  histo->Reset();
  histo->Record(100);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("test_obs_prom_counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_gauge 0.5"), std::string::npos);
  EXPECT_NE(text.find("test_lat_prom_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_prom_us_count 1"), std::string::npos);
  histo->Reset();
}

// ---- SLO tracker ----------------------------------------------------------

TEST(Slo, ParsesFullGrammar) {
  auto parsed = obs::ParseSloSpec("embed:p99<2ms,err<0.1%;knn:p50<500us");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<obs::SloObjective>& objectives = *parsed;
  ASSERT_EQ(objectives.size(), 3u);
  EXPECT_EQ(objectives[0].klass, "embed");
  EXPECT_EQ(objectives[0].metric, obs::SloMetric::kP99);
  EXPECT_EQ(objectives[0].threshold, 2000.0);  // 2ms in us
  EXPECT_EQ(objectives[1].metric, obs::SloMetric::kErr);
  EXPECT_NEAR(objectives[1].threshold, 0.001, 1e-12);
  EXPECT_EQ(objectives[2].klass, "knn");
  EXPECT_EQ(objectives[2].threshold, 500.0);
}

TEST(Slo, RejectsMalformedSpecs) {
  EXPECT_FALSE(obs::ParseSloSpec("embed").ok());
  EXPECT_FALSE(obs::ParseSloSpec("embed:p98<1ms").ok());
  EXPECT_FALSE(obs::ParseSloSpec("embed:p99<").ok());
  EXPECT_FALSE(obs::ParseSloSpec("embed:p99<abc").ok());
  EXPECT_FALSE(obs::ParseSloSpec(":p99<1ms").ok());
}

TEST(Slo, BreachFlipsOnAndOffWithTheWindow) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::LatencyHisto* latency = registry.GetLatencyHisto("test.slo.lat");
  obs::Counter* requests = registry.GetCounter("test.slo.req");
  obs::Counter* errors = registry.GetCounter("test.slo.err");
  latency->Reset();
  requests->Reset();
  errors->Reset();

  auto objectives = obs::ParseSloSpec("probe:p99<1ms,err<10%");
  ASSERT_TRUE(objectives.ok());
  obs::SloTracker tracker(std::move(objectives).ValueOrDie(), /*window=*/2);
  tracker.Bind("probe", latency, requests, errors);

  tracker.Evaluate();  // baseline sample
  EXPECT_EQ(tracker.breached(), 0);

  // A burst of slow, failing traffic inside the window must breach both.
  for (int i = 0; i < 100; ++i) {
    latency->Record(5000);  // 5ms >> 1ms
    requests->Add(1);
  }
  errors->Add(50);  // 50% error rate
  tracker.Evaluate();
  EXPECT_EQ(tracker.breached(), 2);
  EXPECT_GT(registry.Value("slo.probe.p99"), 1000.0);
  EXPECT_EQ(registry.Value("slo.probe.p99.breach"), 1.0);
  EXPECT_EQ(registry.Value("slo.breached"), 2.0);

  // Quiet ticks age the burst out of the 2-sample window: breach clears.
  tracker.Evaluate();
  tracker.Evaluate();
  EXPECT_EQ(tracker.breached(), 0);
  EXPECT_EQ(registry.Value("slo.probe.p99.breach"), 0.0);

  obs::Json state = tracker.StateJson();
  ASSERT_EQ(state.size(), 2);
  EXPECT_EQ(state.at(0).Find("class")->AsString(), "probe");
  EXPECT_FALSE(state.at(0).Find("breach")->AsBool());
}

// ---- Flight recorder ------------------------------------------------------

TEST(Flight, RecordsDumpAndDecodeRoundTrip) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  obs::FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.capacity = 8;
  // No handlers: gtest's own death-test machinery must keep its signals.
  options.install_signal_handlers = false;
  ASSERT_TRUE(flight.Init(options).ok());
  EXPECT_TRUE(flight.initialized());

  // 12 events through a capacity-8 ring: the first 5 (init mark + 4) are
  // overwritten, the dump holds exactly the last 8 in sequence order.
  for (int i = 0; i < 11; ++i) {
    flight.Record(obs::FlightRecorder::kRequest, "unit", i, 100 + i);
  }
  EXPECT_EQ(flight.events_recorded(), 12u);  // init mark + 11

  std::string dump_path = TestPath("flight_dump.json");
  ASSERT_TRUE(flight.DumpJson(dump_path).ok());
  std::ifstream in(dump_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Json parsed;
  ASSERT_TRUE(Json::Parse(text, &parsed)) << text;
  EXPECT_EQ(parsed.Find("record")->AsString(), "flight");
  EXPECT_EQ(parsed.Find("capacity")->AsInt(), 8);
  EXPECT_EQ(parsed.Find("events_recorded")->AsInt(), 12);
  const Json* events = parsed.Find("events");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->size(), 8);
  for (int64_t i = 0; i < events->size(); ++i) {
    const Json& event = events->at(i);
    EXPECT_EQ(event.Find("seq")->AsInt(), 4 + i);  // oldest surviving seq
    EXPECT_EQ(event.Find("name")->AsString(), "unit");
    EXPECT_EQ(event.Find("kind")->AsInt(), obs::FlightRecorder::kRequest);
  }
  std::remove(dump_path.c_str());

  // The mapped ring file exists and starts with the magic.
  std::ifstream bin(flight.bin_path(), std::ios::binary);
  char magic[8] = {};
  bin.read(magic, 8);
  EXPECT_EQ(std::string(magic, 8), "EDSRFLT1");
}

TEST(Flight, RecordBeforeInitIsANoop) {
  // A fresh recorder (not the global, which other tests may have inited).
  // Record on the global before/without init must never crash; observable
  // behavior is covered by the round-trip test above.
  obs::FlightRecorder::Global().Record(obs::FlightRecorder::kMark, "noop");
  SUCCEED();
}

// ---- MetricsExporter ------------------------------------------------------

TEST(Exporter, WritesMonotoneSeqWithPerfLast) {
  std::string path = TestPath("exporter_ts.jsonl");
  std::remove(path.c_str());
  obs::MetricsExporterOptions options;
  options.path = path;
  options.interval_ms = 100000;  // never ticks on its own in this test
  obs::MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  exporter.TickNow();
  exporter.TickNow();
  exporter.Stop();  // writes one final line
  EXPECT_EQ(exporter.lines_written(), 3);

  std::ifstream in(path);
  std::string line;
  int64_t expected_seq = 0;
  while (std::getline(in, line)) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(line, &parsed)) << line;
    EXPECT_EQ(parsed.Find("record")->AsString(), "serve_timeseries");
    EXPECT_EQ(parsed.Find("seq")->AsInt(), expected_seq);
    // Determinism contract: perf is the LAST key on the line.
    EXPECT_EQ(parsed.member(parsed.size() - 1).first, "perf");
    const Json* perf = parsed.Find("perf");
    ASSERT_TRUE(perf != nullptr);
    EXPECT_TRUE(perf->Has("ts_ms"));
    EXPECT_TRUE(perf->Has("uptime_ms"));
    EXPECT_TRUE(perf->Has("metrics"));
    ++expected_seq;
  }
  EXPECT_EQ(expected_seq, 3);
  std::remove(path.c_str());
}

TEST(Exporter, UnopenablePathFailsStartCleanly) {
  obs::MetricsExporterOptions options;
  options.path = "/nonexistent_dir_obs_test/ts.jsonl";
  obs::MetricsExporter exporter(options);
  EXPECT_FALSE(exporter.Start().ok());
  exporter.Stop();  // must be safe after a failed start
}

}  // namespace
}  // namespace edsr
