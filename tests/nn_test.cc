// Tests for Module registry, layers, networks, and state (de)serialization.
#include "src/nn/networks.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/init.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using nn::Mlp;
using nn::SmallConvNet;
using nn::SmallConvNetConfig;
using tensor::Shape;
using tensor::Tensor;

TEST(Linear, ForwardShapeAndValue) {
  util::Rng rng(0);
  nn::Linear layer(3, 2, &rng);
  // Overwrite with known weights for a deterministic check.
  std::vector<nn::NamedTensor> state = layer.NamedState();
  ASSERT_EQ(state.size(), 2u);  // weight, bias
  state[0].value.mutable_data() = {1, 0, 0, 1, 1, 1};  // (3,2)
  state[1].value.mutable_data() = {10, 20};
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 3});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 3 + 20);
}

TEST(Linear, GradCheckThroughLayer) {
  util::Rng rng(1);
  nn::Linear layer(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng, 0.0f, 1.0f, true);
  std::vector<Tensor> inputs = layer.Parameters();
  inputs.push_back(x);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::Square(layer.Forward(x))); },
      inputs);
}

TEST(BatchNorm1d, NormalizesBatchInTraining) {
  util::Rng rng(2);
  nn::BatchNorm1d bn(4);
  bn.SetTraining(true);
  Tensor x = Tensor::Randn({32, 4}, &rng, 5.0f, 3.0f);
  Tensor y = bn.Forward(x);
  for (int64_t j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 32; ++i) mean += y.at(i, j);
    mean /= 32;
    for (int64_t i = 0; i < 32; ++i) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    var /= 32;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm1d, EvalUsesRunningStats) {
  util::Rng rng(3);
  nn::BatchNorm1d bn(2);
  bn.SetTraining(true);
  // Feed many batches so running stats converge to (5, 9).
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::Randn({64, 2}, &rng, 5.0f, 3.0f);
    bn.Forward(x);
  }
  bn.SetTraining(false);
  Tensor probe = Tensor::FromVector({5.0f, 5.0f}, {1, 2});
  Tensor y = bn.Forward(probe);
  EXPECT_NEAR(y.at(0, 0), 0.0f, 0.15f);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 0.15f);
}

TEST(BatchNorm2d, NormalizesPerChannel) {
  util::Rng rng(4);
  nn::BatchNorm2d bn(3);
  bn.SetTraining(true);
  Tensor x = Tensor::Randn({8, 3, 4, 4}, &rng, -2.0f, 4.0f);
  Tensor y = bn.Forward(x);
  for (int64_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    int64_t count = 0;
    for (int64_t b = 0; b < 8; ++b) {
      for (int64_t i = 0; i < 16; ++i) {
        mean += y.at((b * 3 + c) * 16 + i);
        ++count;
      }
    }
    EXPECT_NEAR(mean / count, 0.0, 1e-4);
  }
}

TEST(Mlp, OutputShapeAndParamCount) {
  util::Rng rng(5);
  Mlp mlp({10, 16, 8}, &rng);
  EXPECT_EQ(mlp.input_dim(), 10);
  EXPECT_EQ(mlp.output_dim(), 8);
  Tensor x = Tensor::Randn({4, 10}, &rng);
  EXPECT_EQ(mlp.Forward(x).shape(), (Shape{4, 8}));
  // linear1 (10*16 + 16) + bn (16+16) + linear2 (16*8 + 8)
  EXPECT_EQ(mlp.NumParameters(), 10 * 16 + 16 + 32 + 16 * 8 + 8);
}

TEST(Mlp, TrainsOnToyRegression) {
  // Sanity: an MLP + SGD can fit y = 2x on a few points.
  util::Rng rng(6);
  Mlp mlp({1, 8, 1}, &rng, /*batch_norm=*/false);
  optim::SgdOptions opt;
  opt.lr = 0.05f;
  opt.momentum = 0.9f;
  optim::Sgd sgd(mlp.Parameters(), opt);
  Tensor x = Tensor::FromVector({-1, -0.5, 0, 0.5, 1}, {5, 1});
  Tensor target = Tensor::FromVector({-2, -1, 0, 1, 2}, {5, 1});
  float final_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    sgd.ZeroGrad();
    Tensor loss = tensor::MeanAll(tensor::Square(mlp.Forward(x) - target));
    loss.Backward();
    sgd.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.01f);
}

TEST(SmallConvNet, ForwardShape) {
  util::Rng rng(7);
  SmallConvNetConfig config;
  config.channels = 3;
  config.height = 8;
  config.width = 8;
  config.base_width = 4;
  SmallConvNet net(config, &rng);
  EXPECT_EQ(net.input_dim(), 3 * 8 * 8);
  EXPECT_EQ(net.output_dim(), 8);
  Tensor x = Tensor::Randn({2, 3 * 8 * 8}, &rng);
  EXPECT_EQ(net.Forward(x).shape(), (Shape{2, 8}));
}

TEST(SmallConvNet, BackwardProducesGradsEverywhere) {
  util::Rng rng(8);
  SmallConvNetConfig config;
  config.base_width = 4;
  SmallConvNet net(config, &rng);
  Tensor x = Tensor::Randn({2, net.input_dim()}, &rng);
  Tensor loss = tensor::SumAll(tensor::Square(net.Forward(x)));
  loss.Backward();
  for (const Tensor& p : net.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
    double norm = 0.0;
    for (float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0) << "a parameter received no gradient";
  }
}

TEST(Module, SetRequiresGradFreezes) {
  util::Rng rng(9);
  Mlp mlp({4, 6, 2}, &rng);
  mlp.SetRequiresGrad(false);
  Tensor x = Tensor::Randn({3, 4}, &rng);
  Tensor out = mlp.Forward(x);
  EXPECT_FALSE(out.requires_grad());
}

TEST(Module, CopyStateFromMakesOutputsEqual) {
  util::Rng rng1(10), rng2(11);
  Mlp a({4, 8, 3}, &rng1);
  Mlp b({4, 8, 3}, &rng2);
  Tensor x = Tensor::Randn({5, 4}, &rng1);
  a.SetTraining(false);
  b.SetTraining(false);
  b.CopyStateFrom(a);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
  }
}

TEST(Module, CopyStateIsByValueNotAliased) {
  util::Rng rng(12);
  Mlp a({2, 3}, &rng);
  Mlp b({2, 3}, &rng);
  b.CopyStateFrom(a);
  // Mutating a must not affect b.
  a.NamedState()[0].value.mutable_data()[0] += 100.0f;
  EXPECT_NE(a.NamedState()[0].value.at(0), b.NamedState()[0].value.at(0));
}

TEST(Module, SaveLoadRoundTrip) {
  util::Rng rng1(13), rng2(14);
  SmallConvNetConfig config;
  config.base_width = 4;
  SmallConvNet a(config, &rng1);
  SmallConvNet b(config, &rng2);
  std::string path = ::testing::TempDir() + "/edsr_nn_state.bin";
  a.SaveState(path).Check();
  b.LoadState(path).Check();
  a.SetTraining(false);
  b.SetTraining(false);
  Tensor x = Tensor::Randn({2, a.input_dim()}, &rng1);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

TEST(Module, LoadStateRejectsWrongArchitecture) {
  util::Rng rng(15);
  Mlp a({4, 8, 3}, &rng);
  Mlp b({4, 9, 3}, &rng);
  std::string path = ::testing::TempDir() + "/edsr_nn_state2.bin";
  a.SaveState(path).Check();
  util::Status status = b.LoadState(path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(Init, KaimingBoundsRespected) {
  util::Rng rng(16);
  Tensor w = nn::KaimingUniform({64, 64}, 64, &rng);
  float bound = std::sqrt(6.0f / 64.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

}  // namespace
}  // namespace edsr
