// Tests for the per-component checkpoint hooks: Module state (container and
// legacy formats, staged mutation), optimizer moments, Rng engine state, and
// MemoryBuffer entries. The run-level resume protocol is in resume_test.cc.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cl/memory.h"
#include "src/io/serialize.h"
#include "src/nn/networks.h"
#include "src/optim/optimizer.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

using tensor::Tensor;

std::string TestPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::vector<float>> StateValues(const nn::Module& module) {
  std::vector<std::vector<float>> values;
  for (const nn::NamedTensor& entry : module.NamedState()) {
    values.push_back(entry.value.data());
  }
  return values;
}

// ---- Module state -----------------------------------------------------

TEST(ModuleCheckpoint, ContainerRoundTripIncludesBuffers) {
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  // batch_norm on: the state includes non-trainable running statistics.
  nn::Mlp a({6, 5, 4}, &rng_a);
  nn::Mlp b({6, 5, 4}, &rng_b);

  std::string path = TestPath("module_container.ckpt");
  a.SaveState(path).Check();
  b.LoadState(path).Check();
  EXPECT_EQ(StateValues(b), StateValues(a));
  std::remove(path.c_str());
}

TEST(ModuleCheckpoint, LegacyRawDumpStillLoads) {
  util::Rng rng_a(3);
  util::Rng rng_b(4);
  nn::Mlp a({6, 5, 4}, &rng_a);
  nn::Mlp b({6, 5, 4}, &rng_b);

  // The pre-container format was the bare state payload written straight to
  // disk with no magic, version, or checksum. LoadState must still read it.
  io::BufferWriter payload;
  a.SerializeState(&payload);
  std::string path = TestPath("module_legacy.ckpt");
  WriteFile(path, payload.bytes());

  b.LoadState(path).Check();
  EXPECT_EQ(StateValues(b), StateValues(a));
  std::remove(path.c_str());
}

TEST(ModuleCheckpoint, HugeNameLengthIsRejectedWithoutAllocating) {
  // A corrupt entry-name length used to be passed straight to resize(),
  // turning a flipped bit into a multi-gigabyte allocation. It must now be
  // a clean IoError.
  util::Rng rng(5);
  nn::Mlp module({6, 5, 4}, &rng);

  io::BufferWriter payload;
  payload.WriteU64(module.NamedState().size());
  payload.WriteU64(uint64_t{1} << 60);  // absurd length for the first name
  std::string path = TestPath("module_huge_name.ckpt");
  WriteFile(path, payload.bytes());
  util::Status status = module.LoadState(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ModuleCheckpoint, HugeRankIsRejected) {
  util::Rng rng(6);
  nn::Mlp module({6, 5, 4}, &rng);

  io::BufferWriter payload;
  payload.WriteU64(module.NamedState().size());
  payload.WriteString(module.NamedState()[0].name);
  payload.WriteU64(uint64_t{1} << 50);  // absurd rank
  std::string path = TestPath("module_huge_rank.ckpt");
  WriteFile(path, payload.bytes());
  util::Status status = module.LoadState(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ModuleCheckpoint, PartialPayloadLeavesModuleUntouched) {
  // Deserialization stages the full state and only then swaps it in: a
  // payload that parses for the first N tensors but dies later must leave
  // every parameter and buffer bit-identical, not half-overwritten.
  util::Rng rng_a(7);
  util::Rng rng_b(8);
  nn::Mlp a({6, 5, 4}, &rng_a);
  nn::Mlp b({6, 5, 4}, &rng_b);

  io::BufferWriter payload;
  a.SerializeState(&payload);
  std::vector<uint8_t> bytes = payload.bytes();
  bytes.resize(bytes.size() - 3);  // kill the tail of the last tensor

  std::string path = TestPath("module_partial.ckpt");
  WriteFile(path, bytes);

  std::vector<std::vector<float>> before = StateValues(b);
  EXPECT_FALSE(b.LoadState(path).ok());
  EXPECT_EQ(StateValues(b), before);
  std::remove(path.c_str());
}

// ---- Optimizers -------------------------------------------------------

std::vector<Tensor> MakeParams(float fill) {
  std::vector<Tensor> params;
  params.push_back(Tensor::Full({3}, fill, /*requires_grad=*/true));
  params.push_back(Tensor::Full({2, 2}, -fill, /*requires_grad=*/true));
  return params;
}

void SetGrads(std::vector<Tensor>* params, float base) {
  for (size_t i = 0; i < params->size(); ++i) {
    std::vector<float>& grad = (*params)[i].mutable_grad();
    for (size_t j = 0; j < grad.size(); ++j) {
      grad[j] = base + 0.1f * static_cast<float>(i + j);
    }
  }
}

template <typename Optim, typename Options>
void ExpectOptimizerRoundTrip(const Options& options) {
  std::vector<Tensor> params_a = MakeParams(0.5f);
  Optim a(params_a, options);
  SetGrads(&params_a, 1.0f);
  a.Step();
  SetGrads(&params_a, -0.5f);
  a.Step();

  io::BufferWriter out;
  a.Serialize(&out);

  // Restore into an optimizer whose parameters hold the same values, then
  // drive both with identical gradients: bit-equal trajectories prove the
  // moment buffers (and Adam's step counter) round-tripped exactly.
  std::vector<Tensor> params_b = MakeParams(0.5f);
  for (size_t i = 0; i < params_a.size(); ++i) {
    params_b[i].mutable_data() = params_a[i].data();
  }
  Optim b(params_b, options);
  io::BufferReader in(out.bytes());
  b.Deserialize(&in).Check();
  EXPECT_TRUE(in.ExpectEnd().ok());

  SetGrads(&params_a, 0.25f);
  SetGrads(&params_b, 0.25f);
  a.Step();
  b.Step();
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_b[i].data(), params_a[i].data()) << "parameter " << i;
  }
}

TEST(OptimizerCheckpoint, SgdRoundTrip) {
  optim::SgdOptions options;
  options.momentum = 0.9f;
  options.weight_decay = 1e-4f;
  ExpectOptimizerRoundTrip<optim::Sgd>(options);
}

TEST(OptimizerCheckpoint, AdamRoundTrip) {
  optim::AdamOptions options;
  ExpectOptimizerRoundTrip<optim::Adam>(options);
}

TEST(OptimizerCheckpoint, RejectsKindMismatch) {
  std::vector<Tensor> params = MakeParams(1.0f);
  optim::Sgd sgd(params, optim::SgdOptions{});
  io::BufferWriter out;
  sgd.Serialize(&out);

  optim::Adam adam(MakeParams(1.0f), optim::AdamOptions{});
  io::BufferReader in(out.bytes());
  EXPECT_FALSE(adam.Deserialize(&in).ok());
}

TEST(OptimizerCheckpoint, RejectsParameterCountMismatch) {
  optim::Sgd two(MakeParams(1.0f), optim::SgdOptions{});
  io::BufferWriter out;
  two.Serialize(&out);

  std::vector<Tensor> one;
  one.push_back(Tensor::Full({3}, 1.0f, /*requires_grad=*/true));
  optim::Sgd narrow(one, optim::SgdOptions{});
  io::BufferReader in(out.bytes());
  EXPECT_FALSE(narrow.Deserialize(&in).ok());
}

TEST(OptimizerCheckpoint, RejectsTruncatedMoments) {
  std::vector<Tensor> params = MakeParams(1.0f);
  optim::Sgd a(params, optim::SgdOptions{});
  SetGrads(&params, 1.0f);
  a.Step();
  io::BufferWriter out;
  a.Serialize(&out);

  std::vector<uint8_t> bytes = out.bytes();
  bytes.resize(bytes.size() - 5);
  optim::Sgd b(MakeParams(1.0f), optim::SgdOptions{});
  io::BufferReader in(bytes);
  EXPECT_FALSE(b.Deserialize(&in).ok());
}

// ---- Rng --------------------------------------------------------------

TEST(RngCheckpoint, RestoredEngineContinuesIdenticalStream) {
  util::Rng original(123);
  for (int i = 0; i < 5; ++i) original.Uniform();  // advance past the seed

  std::string state = original.SerializeState();
  util::Rng restored(999);  // different seed: state must fully overwrite it
  restored.DeserializeState(state).Check();

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(restored.engine()(), original.engine()()) << "draw " << i;
  }
}

TEST(RngCheckpoint, RejectsGarbageState) {
  util::Rng rng(1);
  util::Status status = rng.DeserializeState("definitely not an engine");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
}

// ---- MemoryBuffer -----------------------------------------------------

std::vector<cl::MemoryEntry> SampleEntries(int64_t task_id, float base) {
  std::vector<cl::MemoryEntry> entries(2);
  for (size_t i = 0; i < entries.size(); ++i) {
    cl::MemoryEntry& e = entries[i];
    e.features = {base + static_cast<float>(i), base * 2.0f, -base};
    e.task_id = task_id;
    e.source_index = static_cast<int64_t>(10 * task_id + i);
    e.label = static_cast<int64_t>(i);
    e.noise_scale = {0.1f * base, 0.2f * base, 0.3f * base};
    e.stored_output = {base, base + 0.5f};
  }
  return entries;
}

TEST(MemoryCheckpoint, RoundTripsAllSideData) {
  cl::MemoryBuffer a(4);
  a.AddIncrement(SampleEntries(0, 1.0f));
  a.AddIncrement(SampleEntries(1, -2.5f));

  io::BufferWriter out;
  a.Serialize(&out);
  cl::MemoryBuffer b(4);
  io::BufferReader in(out.bytes());
  b.Deserialize(&in).Check();
  EXPECT_TRUE(in.ExpectEnd().ok());

  ASSERT_EQ(b.size(), a.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const cl::MemoryEntry& x = a.entry(i);
    const cl::MemoryEntry& y = b.entry(i);
    EXPECT_EQ(y.features, x.features);
    EXPECT_EQ(y.task_id, x.task_id);
    EXPECT_EQ(y.source_index, x.source_index);
    EXPECT_EQ(y.label, x.label);
    EXPECT_EQ(y.noise_scale, x.noise_scale);
    EXPECT_EQ(y.stored_output, x.stored_output);
  }
}

TEST(MemoryCheckpoint, RejectsBudgetMismatch) {
  cl::MemoryBuffer a(4);
  a.AddIncrement(SampleEntries(0, 1.0f));
  io::BufferWriter out;
  a.Serialize(&out);

  cl::MemoryBuffer b(8);  // a different experiment configuration
  io::BufferReader in(out.bytes());
  EXPECT_EQ(b.Deserialize(&in).code(), util::StatusCode::kInvalidArgument);
}

TEST(MemoryCheckpoint, EveryTruncationLeavesBufferUntouched) {
  cl::MemoryBuffer source(4);
  source.AddIncrement(SampleEntries(0, 1.0f));
  source.AddIncrement(SampleEntries(1, 3.0f));
  io::BufferWriter out;
  source.Serialize(&out);
  const std::vector<uint8_t>& full = out.bytes();

  for (size_t len = 0; len < full.size(); ++len) {
    cl::MemoryBuffer target(4);
    target.AddIncrement(SampleEntries(0, -9.0f));
    io::BufferReader in(full.data(), len);
    EXPECT_FALSE(target.Deserialize(&in).ok()) << "length " << len;
    // Failed restores must not leave a half-replaced buffer behind.
    ASSERT_EQ(target.size(), 2);
    EXPECT_EQ(target.entry(0).features, SampleEntries(0, -9.0f)[0].features);
  }
}

}  // namespace
}  // namespace edsr
