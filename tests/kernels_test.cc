// Tests for the kernels layer: every raw-loop entry point checked against a
// naive reference implementation.
#include "src/tensor/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/simd.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace edsr {
namespace {

namespace kernels = tensor::kernels;

std::vector<float> RandomVec(int64_t n, util::Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->Uniform(-1.0f, 1.0f);
  return v;
}

// Reference GEMM: straightforward triple loop with explicit indexing.
void NaiveGemm(const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>* c, int64_t m, int64_t k, int64_t n,
               bool trans_a, bool trans_b, bool accumulate) {
  if (!accumulate) c->assign(m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        float av = trans_a ? a[p * m + i] : a[i * k + p];
        float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      (*c)[i * n + j] += acc;
    }
  }
}

TEST(Kernels, GemmAllTransposeCombos) {
  util::Rng rng(1);
  const int64_t m = 4, k = 5, n = 3;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (bool acc : {false, true}) {
        std::vector<float> a = RandomVec(m * k, &rng);
        std::vector<float> b = RandomVec(k * n, &rng);
        std::vector<float> expected = RandomVec(m * n, &rng);
        std::vector<float> actual = expected;  // same starting contents
        NaiveGemm(a, b, &expected, m, k, n, ta, tb, acc);
        kernels::Gemm(a.data(), b.data(), actual.data(), m, k, n, ta, tb,
                      acc);
        for (int64_t i = 0; i < m * n; ++i) {
          EXPECT_NEAR(actual[i], expected[i], 1e-5f)
              << "ta=" << ta << " tb=" << tb << " acc=" << acc << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, GemmBlockedEdgeSizesMatchNaive) {
  // Exercise every micro-kernel edge case: sizes below, straddling, and
  // above the register-tile and cache-block boundaries, under all four
  // transpose combinations and both accumulate modes.
  util::Rng rng(6);
  const int64_t sizes[] = {1, 3, 17, 33, 65};
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        for (bool ta : {false, true}) {
          for (bool tb : {false, true}) {
            for (bool acc : {false, true}) {
              std::vector<float> a = RandomVec(m * k, &rng);
              std::vector<float> b = RandomVec(k * n, &rng);
              std::vector<float> expected = RandomVec(m * n, &rng);
              std::vector<float> actual = expected;
              NaiveGemm(a, b, &expected, m, k, n, ta, tb, acc);
              kernels::Gemm(a.data(), b.data(), actual.data(), m, k, n, ta,
                            tb, acc);
              float tol = 1e-4f * static_cast<float>(k);
              for (int64_t i = 0; i < m * n; ++i) {
                ASSERT_NEAR(actual[i], expected[i], tol)
                    << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
                    << " tb=" << tb << " acc=" << acc << " i=" << i;
              }
            }
          }
        }
      }
    }
  }
}

TEST(Kernels, GemmZeroTimesFiniteIsExact) {
  // Zeros in either operand contribute exactly 0 against finite values.
  std::vector<float> a = {0, 2, 0, 0};  // (2 x 2) with zeros
  std::vector<float> b = {1, 2, 3, 4};
  std::vector<float> c(4, -1.0f);
  kernels::Gemm(a.data(), b.data(), c.data(), 2, 2, 2, false, false, false);
  EXPECT_FLOAT_EQ(c[0], 6.0f);   // 0*1 + 2*3
  EXPECT_FLOAT_EQ(c[1], 8.0f);   // 0*2 + 2*4
  EXPECT_FLOAT_EQ(c[2], 0.0f);
  EXPECT_FLOAT_EQ(c[3], 0.0f);
}

TEST(Kernels, GemmPropagatesNanAndInf) {
  // IEEE semantics through the branch-free inner loop: a zero LHS entry must
  // NOT short-circuit an inf/nan RHS entry (0 * inf = nan), and infinities
  // must reach the output. A data-dependent zero-skip would hide both.
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  {
    std::vector<float> a = {0.0f, 1.0f};        // (1 x 2)
    std::vector<float> b = {inf, 2.0f};         // (2 x 1)
    std::vector<float> c(1, 0.0f);
    kernels::Gemm(a.data(), b.data(), c.data(), 1, 2, 1, false, false, false);
    EXPECT_TRUE(std::isnan(c[0])) << "0 * inf must propagate nan, got " << c[0];
  }
  {
    std::vector<float> a = {1.0f, 0.0f};        // nan in B row hit by the 0
    std::vector<float> b = {3.0f, nan};
    std::vector<float> c(1, 0.0f);
    kernels::Gemm(a.data(), b.data(), c.data(), 1, 2, 1, false, false, false);
    EXPECT_TRUE(std::isnan(c[0])) << "0 * nan must propagate nan";
  }
  {
    std::vector<float> a = {2.0f, 1.0f};        // plain inf accumulation
    std::vector<float> b = {inf, 1.0f};
    std::vector<float> c(1, 0.0f);
    kernels::Gemm(a.data(), b.data(), c.data(), 1, 2, 1, false, false, false);
    EXPECT_TRUE(std::isinf(c[0]) && c[0] > 0.0f);
  }
}

TEST(Kernels, PairwiseSqDistMatchesScalar) {
  util::Rng rng(7);
  const int64_t n = 33, m = 17, d = 19;
  std::vector<float> a = RandomVec(n * d, &rng);
  std::vector<float> b = RandomVec(m * d, &rng);
  std::vector<float> out(n * m);
  kernels::PairwiseSqDist(a.data(), n, b.data(), m, d, out.data());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      double expected = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(a[i * d + c]) - b[j * d + c];
        expected += diff * diff;
      }
      ASSERT_NEAR(out[i * m + j], expected, 1e-3)
          << "i=" << i << " j=" << j;
      ASSERT_GE(out[i * m + j], 0.0f) << "clamp must keep distances >= 0";
    }
  }
}

TEST(Kernels, PairwiseSqDistSelfDistancesNearZero) {
  // Identical rows are clamped at 0 but only promised to be *near* zero;
  // pin the documented contract.
  util::Rng rng(8);
  const int64_t n = 5, d = 16;
  std::vector<float> a = RandomVec(n * d, &rng);
  std::vector<float> out(n * n);
  kernels::PairwiseSqDist(a.data(), n, a.data(), n, d, out.data());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GE(out[i * n + i], 0.0f);
    EXPECT_LE(out[i * n + i], 1e-4f);
  }
}

TEST(Kernels, Blas1Entries) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  kernels::Axpy(3, 2.0f, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);

  kernels::Scale(3, 0.5f, y.data());
  EXPECT_FLOAT_EQ(y[1], 12.0f);

  kernels::AddScalar(3, 1.0f, x.data());
  EXPECT_FLOAT_EQ(x[0], 2.0f);

  EXPECT_NEAR(kernels::SumAll(3, x.data()), 9.0, 1e-6);
  EXPECT_NEAR(kernels::SumSquares(3, x.data()), 4 + 9 + 16, 1e-6);
  std::vector<float> z = {1, 0, 2};
  EXPECT_NEAR(kernels::Dot(3, x.data(), z.data()), 2 + 0 + 8, 1e-6);
}

TEST(Kernels, EmaUpdateLerps) {
  std::vector<float> online = {1.0f, 2.0f};
  std::vector<float> target = {0.0f, 0.0f};
  kernels::EmaUpdate(2, 0.9f, online.data(), target.data());
  EXPECT_NEAR(target[0], 0.1f, 1e-6f);
  EXPECT_NEAR(target[1], 0.2f, 1e-6f);
}

TEST(Kernels, NormalizeL2) {
  std::vector<float> x = {3.0f, 4.0f};
  kernels::NormalizeL2(2, x.data());
  EXPECT_NEAR(x[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x[1], 0.8f, 1e-5f);
  // Zero vector stays finite thanks to eps.
  std::vector<float> zero = {0.0f, 0.0f};
  kernels::NormalizeL2(2, zero.data());
  EXPECT_TRUE(std::isfinite(zero[0]));
}

TEST(Kernels, StridedSumAndBroadcastAddAreAdjoint) {
  // (outer=2, dim=3, inner=2) tensor summed over dim.
  util::Rng rng(2);
  std::vector<float> src = RandomVec(2 * 3 * 2, &rng);
  std::vector<float> dst(2 * 2);
  kernels::StridedSum(src.data(), 2, 3, 2, dst.data());
  for (int64_t o = 0; o < 2; ++o) {
    for (int64_t i = 0; i < 2; ++i) {
      float expected = 0.0f;
      for (int64_t d = 0; d < 3; ++d) expected += src[(o * 3 + d) * 2 + i];
      EXPECT_NEAR(dst[o * 2 + i], expected, 1e-5f);
    }
  }
  // Adjoint identity: <StridedSum(x), y> == <x, StridedBroadcastAdd(y)>.
  std::vector<float> y = RandomVec(2 * 2, &rng);
  std::vector<float> scattered(2 * 3 * 2, 0.0f);
  kernels::StridedBroadcastAdd(y.data(), 2, 3, 2, scattered.data());
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < 4; ++i) lhs += dst[i] * y[i];
  for (int64_t i = 0; i < 12; ++i) rhs += src[i] * scattered[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Kernels, StridedMaxFindsValuesAndFlatIndices) {
  // (outer=1, dim=3, inner=2): columns are [1,5,3] and [4,2,6].
  std::vector<float> src = {1, 4, 5, 2, 3, 6};
  std::vector<float> max_out(2);
  std::vector<int64_t> argmax(2);
  kernels::StridedMax(src.data(), 1, 3, 2, max_out.data(), argmax.data());
  EXPECT_FLOAT_EQ(max_out[0], 5.0f);
  EXPECT_FLOAT_EQ(max_out[1], 6.0f);
  EXPECT_EQ(argmax[0], 2);  // flat index of 5
  EXPECT_EQ(argmax[1], 5);  // flat index of 6
}

TEST(Kernels, ColMeanAndSubRowVector) {
  std::vector<float> rows = {1, 2, 3, 4, 5, 6};  // (3 x 2)
  std::vector<float> mean(2);
  kernels::ColMean(rows.data(), 3, 2, mean.data());
  EXPECT_NEAR(mean[0], 3.0f, 1e-6f);
  EXPECT_NEAR(mean[1], 4.0f, 1e-6f);
  std::vector<float> centered(6);
  kernels::SubRowVector(rows.data(), 3, 2, mean.data(), centered.data());
  EXPECT_NEAR(centered[0], -2.0f, 1e-6f);
  EXPECT_NEAR(centered[5], 2.0f, 1e-6f);
}

TEST(Kernels, Transpose2dOverwriteAndAccumulate) {
  std::vector<float> src = {1, 2, 3, 4, 5, 6};  // (2 x 3)
  std::vector<float> dst(6, 100.0f);
  kernels::Transpose2d(src.data(), 2, 3, dst.data());
  EXPECT_FLOAT_EQ(dst[0], 1.0f);
  EXPECT_FLOAT_EQ(dst[1], 4.0f);
  EXPECT_FLOAT_EQ(dst[4], 3.0f);
  kernels::Transpose2d(src.data(), 2, 3, dst.data(), /*accumulate=*/true);
  EXPECT_FLOAT_EQ(dst[0], 2.0f);
  EXPECT_FLOAT_EQ(dst[1], 8.0f);
}

TEST(Kernels, GatherScatterRows) {
  std::vector<float> src = {1, 2, 3, 4, 5, 6};  // (3 x 2)
  std::vector<int64_t> picks = {2, 0, 2};
  std::vector<float> gathered(3 * 2);
  kernels::GatherRows(src.data(), picks.data(), 3, 2, gathered.data());
  EXPECT_FLOAT_EQ(gathered[0], 5.0f);
  EXPECT_FLOAT_EQ(gathered[2], 1.0f);
  EXPECT_FLOAT_EQ(gathered[4], 5.0f);

  std::vector<float> scattered(6, 0.0f);
  kernels::ScatterAddRows(gathered.data(), picks.data(), 3, 2,
                          scattered.data());
  EXPECT_FLOAT_EQ(scattered[0], 1.0f);   // from pick index 1
  EXPECT_FLOAT_EQ(scattered[4], 10.0f);  // row 2 hit twice with value 5
}

TEST(Kernels, IndexedScatterAddWithDuplicates) {
  std::vector<float> dst(3, 0.0f);
  std::vector<int64_t> index = {1, 1, 2};
  std::vector<float> src = {5, 7, 2};
  kernels::IndexedScatterAdd(3, index.data(), src.data(), dst.data());
  EXPECT_FLOAT_EQ(dst[0], 0.0f);
  EXPECT_FLOAT_EQ(dst[1], 12.0f);
  EXPECT_FLOAT_EQ(dst[2], 2.0f);
}

TEST(Kernels, Im2ColCol2ImAdjoint) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for random x, y (adjoint pair).
  util::Rng rng(3);
  const int64_t c = 2, h = 5, w = 4, kernel = 3, stride = 2, padding = 1;
  const int64_t oh = (h + 2 * padding - kernel) / stride + 1;
  const int64_t ow = (w + 2 * padding - kernel) / stride + 1;
  const int64_t cols = c * kernel * kernel * oh * ow;
  std::vector<float> x = RandomVec(c * h * w, &rng);
  std::vector<float> y = RandomVec(cols, &rng);

  std::vector<float> unfolded(cols);
  kernels::Im2Col(x.data(), c, h, w, kernel, stride, padding,
                  unfolded.data());
  std::vector<float> folded(c * h * w, 0.0f);
  kernels::Col2Im(y.data(), c, h, w, kernel, stride, padding, folded.data());

  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cols; ++i) lhs += unfolded[i] * y[i];
  for (int64_t i = 0; i < c * h * w; ++i) rhs += x[i] * folded[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Kernels, MaxPool2dForward) {
  // One 4x4 plane pooled with window 2.
  std::vector<float> input = {1, 2,  5,  6,   //
                              3, 4,  7,  8,   //
                              9, 10, 13, 14,  //
                              11, 12, 15, 16};
  std::vector<float> out(4);
  std::vector<int64_t> argmax(4);
  kernels::MaxPool2dForward(input.data(), 1, 1, 4, 4, 2, out.data(),
                            argmax.data());
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(out[2], 12.0f);
  EXPECT_FLOAT_EQ(out[3], 16.0f);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);
}

TEST(Kernels, SgdMomentumStepMatchesReference) {
  const float lr = 0.1f, momentum = 0.9f, wd = 0.01f;
  std::vector<float> grad = {1.0f, -2.0f};
  std::vector<float> vel = {0.5f, 0.25f};
  std::vector<float> data = {3.0f, -4.0f};
  std::vector<float> ref_vel = vel, ref_data = data;
  for (int i = 0; i < 2; ++i) {
    float g = grad[i] + wd * ref_data[i];
    ref_vel[i] = momentum * ref_vel[i] + g;
    ref_data[i] -= lr * ref_vel[i];
  }
  kernels::SgdMomentumStep(2, lr, momentum, wd, grad.data(), vel.data(),
                           data.data());
  EXPECT_NEAR(vel[0], ref_vel[0], 1e-6f);
  EXPECT_NEAR(data[0], ref_data[0], 1e-6f);
  EXPECT_NEAR(vel[1], ref_vel[1], 1e-6f);
  EXPECT_NEAR(data[1], ref_data[1], 1e-6f);
}

TEST(Kernels, AdamStepMatchesReference) {
  const float lr = 0.01f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f, wd = 0.05f;
  const float bc1 = 1.0f - std::pow(b1, 3.0f);
  const float bc2 = 1.0f - std::pow(b2, 3.0f);
  std::vector<float> grad = {0.5f, -1.5f};
  std::vector<float> m = {0.1f, -0.2f};
  std::vector<float> v = {0.01f, 0.02f};
  std::vector<float> data = {1.0f, -1.0f};
  std::vector<float> rm = m, rv = v, rd = data;
  for (int i = 0; i < 2; ++i) {
    float g = grad[i] + wd * rd[i];
    rm[i] = b1 * rm[i] + (1.0f - b1) * g;
    rv[i] = b2 * rv[i] + (1.0f - b2) * g * g;
    rd[i] -= lr * (rm[i] / bc1) / (std::sqrt(rv[i] / bc2) + eps);
  }
  kernels::AdamStep(2, lr, b1, b2, eps, wd, bc1, bc2, grad.data(), m.data(),
                    v.data(), data.data());
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(m[i], rm[i], 1e-6f);
    EXPECT_NEAR(v[i], rv[i], 1e-6f);
    EXPECT_NEAR(data[i], rd[i], 1e-6f);
  }
}

// ---- Dispatch-tier sweep -------------------------------------------------
//
// Every (tier, thread-count) configuration the dispatcher can select must
// agree: scalar and AVX2 within a float tolerance, and — the determinism
// contract from threadpool.h — every thread count bit-identical to the
// 1-thread run of the same tier.

namespace simd = tensor::simd;

// Saves and restores the dispatch tier and pool size around a test.
class DispatchConfigGuard {
 public:
  DispatchConfigGuard()
      : tier_(simd::ActiveTier()),
        threads_(util::ThreadPool::Global().NumThreads()) {}
  ~DispatchConfigGuard() {
    simd::SetTierForTesting(tier_);
    util::ThreadPool::Global().SetNumThreadsForTesting(threads_);
  }

 private:
  simd::Tier tier_;
  int threads_;
};

struct DispatchConfig {
  simd::Tier tier;
  int threads;
};

std::vector<DispatchConfig> AllDispatchConfigs() {
  std::vector<DispatchConfig> configs = {{simd::Tier::kScalar, 1},
                                         {simd::Tier::kScalar, 4}};
  if (simd::SupportedTier() == simd::Tier::kAvx2) {
    configs.push_back({simd::Tier::kAvx2, 1});
    configs.push_back({simd::Tier::kAvx2, 2});
    configs.push_back({simd::Tier::kAvx2, 4});
  }
  return configs;
}

void ApplyConfig(const DispatchConfig& config) {
  simd::SetTierForTesting(config.tier);
  util::ThreadPool::Global().SetNumThreadsForTesting(config.threads);
}

TEST(KernelsDispatch, GemmEveryTierMatchesNaiveAndThreadsAreBitIdentical) {
  DispatchConfigGuard guard;
  util::Rng rng(31);
  // Odd sizes straddling both register tiles (scalar 4x8, AVX2 6x16) and
  // the cache blocks, plus a square size past the packing boundaries.
  struct Shape { int64_t m, k, n; };
  const Shape shapes[] = {{1, 1, 1},   {5, 3, 17},   {23, 65, 9},
                          {97, 31, 130}, {64, 300, 48}, {129, 129, 129}};
  for (const Shape& shape : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        std::vector<float> a = RandomVec(shape.m * shape.k, &rng);
        std::vector<float> b = RandomVec(shape.k * shape.n, &rng);
        std::vector<float> expected = RandomVec(shape.m * shape.n, &rng);
        const std::vector<float> seed_c = expected;
        NaiveGemm(a, b, &expected, shape.m, shape.k, shape.n, ta, tb,
                  /*accumulate=*/true);
        const float tol = 1e-4f * static_cast<float>(shape.k);
        for (const DispatchConfig& config : AllDispatchConfigs()) {
          ApplyConfig(config);
          std::vector<float> actual = seed_c;
          kernels::Gemm(a.data(), b.data(), actual.data(), shape.m, shape.k,
                        shape.n, ta, tb, /*accumulate=*/true);
          for (int64_t i = 0; i < shape.m * shape.n; ++i) {
            ASSERT_NEAR(actual[i], expected[i], tol)
                << "tier=" << simd::TierName(config.tier)
                << " threads=" << config.threads << " m=" << shape.m
                << " k=" << shape.k << " n=" << shape.n << " ta=" << ta
                << " tb=" << tb << " i=" << i;
          }
          if (config.threads == 1) continue;
          // Bit-identical to the same tier at 1 thread: the macro-panel
          // decomposition must not depend on the pool size.
          simd::SetTierForTesting(config.tier);
          util::ThreadPool::Global().SetNumThreadsForTesting(1);
          std::vector<float> serial = seed_c;
          kernels::Gemm(a.data(), b.data(), serial.data(), shape.m, shape.k,
                        shape.n, ta, tb, /*accumulate=*/true);
          ASSERT_EQ(0, std::memcmp(serial.data(), actual.data(),
                                   serial.size() * sizeof(float)))
              << "tier=" << simd::TierName(config.tier) << " threads="
              << config.threads << " diverged from its own 1-thread run";
        }
      }
    }
  }
}

TEST(KernelsDispatch, PairwiseSqDistEveryTierMatchesAndThreadsBitIdentical) {
  DispatchConfigGuard guard;
  util::Rng rng(32);
  const int64_t n = 130, m = 70, d = 33;
  std::vector<float> a = RandomVec(n * d, &rng);
  std::vector<float> b = RandomVec(m * d, &rng);
  for (const DispatchConfig& config : AllDispatchConfigs()) {
    ApplyConfig(config);
    std::vector<float> out(n * m);
    kernels::PairwiseSqDist(a.data(), n, b.data(), m, d, out.data());
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        double expected = 0.0;
        for (int64_t c = 0; c < d; ++c) {
          double diff = static_cast<double>(a[i * d + c]) - b[j * d + c];
          expected += diff * diff;
        }
        ASSERT_NEAR(out[i * m + j], expected, 1e-3)
            << "tier=" << simd::TierName(config.tier)
            << " threads=" << config.threads << " i=" << i << " j=" << j;
        ASSERT_GE(out[i * m + j], 0.0f);
      }
    }
    if (config.threads == 1) continue;
    simd::SetTierForTesting(config.tier);
    util::ThreadPool::Global().SetNumThreadsForTesting(1);
    std::vector<float> serial(n * m);
    kernels::PairwiseSqDist(a.data(), n, b.data(), m, d, serial.data());
    ASSERT_EQ(0, std::memcmp(serial.data(), out.data(),
                             serial.size() * sizeof(float)))
        << "tier=" << simd::TierName(config.tier)
        << " threads=" << config.threads;
  }
}

TEST(KernelsDispatch, Blas1AndReductionsAgreeAcrossTiers) {
  DispatchConfigGuard guard;
  util::Rng rng(33);
  const int64_t n = 1031;  // odd length: exercises every vector tail
  std::vector<float> x = RandomVec(n, &rng);
  std::vector<float> y = RandomVec(n, &rng);

  simd::SetTierForTesting(simd::Tier::kScalar);
  std::vector<float> y_scalar = y;
  kernels::Axpy(n, 0.7f, x.data(), y_scalar.data());
  kernels::Scale(n, 1.3f, y_scalar.data());
  kernels::AddScalar(n, -0.2f, y_scalar.data());
  std::vector<float> t_scalar = x;
  kernels::EmaUpdate(n, 0.9f, y_scalar.data(), t_scalar.data());
  const double sum_scalar = kernels::SumAll(n, y_scalar.data());
  const double sq_scalar = kernels::SumSquares(n, y_scalar.data());
  const double dot_scalar = kernels::Dot(n, x.data(), y_scalar.data());

  if (simd::SupportedTier() != simd::Tier::kAvx2) {
    GTEST_SKIP() << "AVX2 unsupported on this host";
  }
  simd::SetTierForTesting(simd::Tier::kAvx2);
  std::vector<float> y_simd = y;
  kernels::Axpy(n, 0.7f, x.data(), y_simd.data());
  kernels::Scale(n, 1.3f, y_simd.data());
  kernels::AddScalar(n, -0.2f, y_simd.data());
  std::vector<float> t_simd = x;
  kernels::EmaUpdate(n, 0.9f, y_simd.data(), t_simd.data());
  for (int64_t i = 0; i < n; ++i) {
    // Element-wise ops don't reassociate, but the AVX2 lanes use FMA
    // (single rounding) where scalar rounds twice: allow a few ulps.
    ASSERT_NEAR(y_scalar[i], y_simd[i], 1e-5f) << "i=" << i;
    ASSERT_NEAR(t_scalar[i], t_simd[i], 1e-6f) << "i=" << i;
  }
  // Reductions reassociate (8 lanes + double pairs); allow a small slack.
  EXPECT_NEAR(kernels::SumAll(n, y_simd.data()), sum_scalar, 1e-4);
  EXPECT_NEAR(kernels::SumSquares(n, y_simd.data()), sq_scalar, 1e-4);
  EXPECT_NEAR(kernels::Dot(n, x.data(), y_simd.data()), dot_scalar, 1e-4);
}

TEST(KernelsDispatch, GemmInt8ExactAcrossTiersAndThreads) {
  DispatchConfigGuard guard;
  util::Rng rng(34);
  const int64_t m = 37, k = 96, n = 29;  // k: multiple of 32
  std::vector<int8_t> a(m * k);
  std::vector<int8_t> bt(n * k);
  for (int8_t& v : a) v = static_cast<int8_t>(rng.Uniform(-127.0f, 127.0f));
  for (int8_t& v : bt) v = static_cast<int8_t>(rng.Uniform(-127.0f, 127.0f));
  std::vector<int32_t> expected(m * n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(a[i * k + p]) *
               static_cast<int32_t>(bt[j * k + p]);
      }
      expected[i * n + j] = acc;
    }
  }
  for (const DispatchConfig& config : AllDispatchConfigs()) {
    ApplyConfig(config);
    std::vector<int32_t> actual(m * n, -1);
    kernels::GemmInt8(a.data(), bt.data(), actual.data(), m, k, n);
    // Integer accumulation: every tier and thread count is exact.
    ASSERT_EQ(expected, actual)
        << "tier=" << simd::TierName(config.tier)
        << " threads=" << config.threads;
  }
}

TEST(Kernels, BroadcastPlanIteratesOdometer) {
  // a (2 x 3) with b broadcast along the rows (1 x 3).
  kernels::BroadcastPlan bc;
  bc.dims = {2, 3};
  bc.stride_a = {3, 1};
  bc.stride_b = {0, 1};
  bc.numel = 6;
  std::vector<int64_t> seen_a, seen_b;
  kernels::ForEachBroadcast(bc, [&](int64_t i, int64_t ia, int64_t ib) {
    EXPECT_EQ(i, static_cast<int64_t>(seen_a.size()));
    seen_a.push_back(ia);
    seen_b.push_back(ib);
  });
  EXPECT_EQ(seen_a, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(seen_b, (std::vector<int64_t>{0, 1, 2, 0, 1, 2}));
}

}  // namespace
}  // namespace edsr
