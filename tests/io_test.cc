// Tests for the io:: checkpoint container: CRC-32, bounds-checked buffer
// (de)serialization, atomic writes, and — the point of the subsystem —
// that no truncation or single-bit corruption ever crashes a reader.
#include "src/io/container.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/io/crc32.h"
#include "src/io/serialize.h"

namespace edsr {
namespace {

std::string TestPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- CRC-32 -----------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The IEEE CRC-32 check value for the ASCII digits "123456789".
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(io::Crc32("", 0), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "incremental checksumming";
  uint32_t whole = io::Crc32(data.data(), data.size());
  uint32_t part = io::Crc32(data.data(), 7);
  part = io::Crc32(data.data() + 7, data.size() - 7, part);
  EXPECT_EQ(part, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<uint8_t> bytes(64, 0xA5);
  uint32_t clean = io::Crc32(bytes.data(), bytes.size());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(io::Crc32(bytes.data(), bytes.size()), clean) << "bit " << bit;
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

// ---- BufferWriter / BufferReader --------------------------------------

TEST(Serialize, RoundTripsEveryPrimitive) {
  io::BufferWriter out;
  out.WriteU8(0xAB);
  out.WriteU32(0xDEADBEEF);
  out.WriteU64(1ull << 60);
  out.WriteI64(-42);
  out.WriteF32(3.25f);
  out.WriteF64(-1.0 / 3.0);
  out.WriteString("hello");
  out.WriteFloats({1.0f, -2.0f, 0.5f});
  out.WriteInts({7, -9});

  io::BufferReader in(out.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string str;
  std::vector<float> floats;
  std::vector<int64_t> ints;
  ASSERT_TRUE(in.ReadU8(&u8).ok());
  ASSERT_TRUE(in.ReadU32(&u32).ok());
  ASSERT_TRUE(in.ReadU64(&u64).ok());
  ASSERT_TRUE(in.ReadI64(&i64).ok());
  ASSERT_TRUE(in.ReadF32(&f32).ok());
  ASSERT_TRUE(in.ReadF64(&f64).ok());
  ASSERT_TRUE(in.ReadString(&str).ok());
  ASSERT_TRUE(in.ReadFloats(&floats).ok());
  ASSERT_TRUE(in.ReadInts(&ints).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -1.0 / 3.0);
  EXPECT_EQ(str, "hello");
  EXPECT_EQ(floats, (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(ints, (std::vector<int64_t>{7, -9}));
  EXPECT_TRUE(in.AtEnd());
  EXPECT_TRUE(in.ExpectEnd().ok());
}

TEST(Serialize, EveryTruncationFailsCleanly) {
  io::BufferWriter out;
  out.WriteU32(17);
  out.WriteString("name");
  out.WriteFloats({1.0f, 2.0f});
  const std::vector<uint8_t>& full = out.bytes();

  for (size_t len = 0; len < full.size(); ++len) {
    io::BufferReader in(full.data(), len);
    uint32_t u32 = 0;
    std::string str;
    std::vector<float> floats;
    util::Status status = in.ReadU32(&u32);
    if (status.ok()) status = in.ReadString(&str);
    if (status.ok()) status = in.ReadFloats(&floats);
    EXPECT_FALSE(status.ok()) << "length " << len;
    EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  }
}

TEST(Serialize, HugeLengthPrefixIsRejectedBeforeAllocating) {
  // A corrupt length prefix claiming ~2^61 elements must fail by bounds
  // check, not by attempting a multi-exabyte allocation.
  io::BufferWriter out;
  out.WriteU64(uint64_t{1} << 61);
  out.WriteU8(0);  // far fewer payload bytes than the prefix claims

  std::string str;
  EXPECT_EQ(io::BufferReader(out.bytes()).ReadString(&str).code(),
            util::StatusCode::kIoError);
  std::vector<float> floats;
  EXPECT_EQ(io::BufferReader(out.bytes()).ReadFloats(&floats).code(),
            util::StatusCode::kIoError);
  std::vector<int64_t> ints;
  EXPECT_EQ(io::BufferReader(out.bytes()).ReadInts(&ints).code(),
            util::StatusCode::kIoError);
}

TEST(Serialize, ExpectEndRejectsTrailingBytes) {
  io::BufferWriter out;
  out.WriteU8(1);
  out.WriteU8(2);
  io::BufferReader in(out.bytes());
  uint8_t value = 0;
  ASSERT_TRUE(in.ReadU8(&value).ok());
  EXPECT_FALSE(in.ExpectEnd().ok());
}

// ---- Container --------------------------------------------------------

std::string WriteTwoSectionContainer(const std::string& name) {
  std::string path = TestPath(name);
  io::ContainerWriter writer(path);
  io::BufferWriter alpha;
  alpha.WriteString("alpha payload");
  writer.AddSection("alpha", &alpha);
  io::BufferWriter beta;
  beta.WriteFloats({1.0f, 2.0f, 3.0f});
  writer.AddSection("beta", &beta);
  writer.Finish().Check();
  return path;
}

TEST(Container, RoundTripsSections) {
  std::string path = WriteTwoSectionContainer("container_roundtrip.ckpt");
  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE((*reader).HasSection("alpha"));
  EXPECT_TRUE((*reader).HasSection("beta"));
  EXPECT_FALSE((*reader).HasSection("gamma"));
  EXPECT_EQ((*reader).SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));

  std::vector<uint8_t> bytes;
  ASSERT_TRUE((*reader).ReadSection("alpha", &bytes).ok());
  std::string text;
  ASSERT_TRUE(io::BufferReader(bytes).ReadString(&text).ok());
  EXPECT_EQ(text, "alpha payload");

  ASSERT_TRUE((*reader).ReadSection("beta", &bytes).ok());
  std::vector<float> floats;
  ASSERT_TRUE(io::BufferReader(bytes).ReadFloats(&floats).ok());
  EXPECT_EQ(floats, (std::vector<float>{1.0f, 2.0f, 3.0f}));

  EXPECT_EQ((*reader).ReadSection("gamma", &bytes).code(),
            util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Container, WriteIsAtomic) {
  std::string path = TestPath("container_atomic.ckpt");
  std::remove(path.c_str());
  {
    io::ContainerWriter writer(path);
    io::BufferWriter payload;
    payload.WriteU32(7);
    writer.AddSection("only", &payload);
    // Nothing may exist under the final name until Finish() succeeds.
    EXPECT_FALSE(FileExists(path));
    writer.Finish().Check();
  }
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Container, FinishFailsCleanlyOnUnwritablePath) {
  std::string path = TestPath("no_such_dir") + "/nested/run.ckpt";
  io::ContainerWriter writer(path);
  io::BufferWriter payload;
  payload.WriteU32(1);
  writer.AddSection("only", &payload);
  EXPECT_EQ(writer.Finish().code(), util::StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
}

TEST(Container, MissingFileIsCleanError) {
  util::Result<io::ContainerReader> reader =
      io::ContainerReader::Open(TestPath("does_not_exist.ckpt"));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kIoError);
}

TEST(Container, RejectsBadMagic) {
  std::string path = WriteTwoSectionContainer("container_magic.ckpt");
  std::vector<uint8_t> bytes = ReadFile(path);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Container, RejectsUnknownVersion) {
  std::string path = WriteTwoSectionContainer("container_version.ckpt");
  std::vector<uint8_t> bytes = ReadFile(path);
  bytes[8] = 0xFF;  // first byte of the little-endian u32 format version
  WriteFile(path, bytes);
  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Container, EveryTruncationFailsCleanly) {
  // Chopping the file at *any* byte boundary — inside the header, a payload,
  // or the section table — must surface as a Status, never a crash. The
  // table sits at the end of the file, so every proper prefix is invalid.
  std::string path = WriteTwoSectionContainer("container_truncate.ckpt");
  std::vector<uint8_t> full = ReadFile(path);
  ASSERT_GT(full.size(), 24u);

  for (size_t len = 0; len < full.size(); ++len) {
    WriteFile(path, std::vector<uint8_t>(full.begin(), full.begin() + len));
    util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "truncated to " << len << " bytes";
  }
  std::remove(path.c_str());
}

TEST(Container, EverySingleBitFlipFailsCleanly) {
  // Flip each bit of the container in turn. Wherever the flip lands —
  // header, payload (CRC-covered), table offsets, or a section name — a
  // reader asking for the sections it wrote must get a Status error.
  std::string path = WriteTwoSectionContainer("container_bitflip.ckpt");
  const std::vector<uint8_t> full = ReadFile(path);

  for (size_t bit = 0; bit < full.size() * 8; ++bit) {
    std::vector<uint8_t> corrupt = full;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    WriteFile(path, corrupt);

    util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
    bool failed = !reader.ok();
    if (!failed) {
      std::vector<uint8_t> bytes;
      failed = !(*reader).ReadSection("alpha", &bytes).ok() ||
               !(*reader).ReadSection("beta", &bytes).ok();
    }
    EXPECT_TRUE(failed) << "flip of bit " << bit
                        << " went undetected (byte " << bit / 8 << ")";
  }
  std::remove(path.c_str());
}

TEST(Container, OpenSharedReadsLikeOpen) {
  std::string path = WriteTwoSectionContainer("container_shared.ckpt");
  util::Result<io::ContainerReader> reader =
      io::ContainerReader::OpenShared(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE((*reader).ReadSection("alpha", &bytes).ok());
  std::string text;
  ASSERT_TRUE(io::BufferReader(bytes).ReadString(&text).ok());
  EXPECT_EQ(text, "alpha payload");
  std::remove(path.c_str());
}

TEST(Container, OpenSharedRecoversWhenFirstReadSeesAPartialFile) {
  // Simulate losing the race with an atomic rename: the first Open sees a
  // truncated file; by the retry the full container has replaced it.
  // OpenShared's retry-once contract makes this invisible to the caller.
  std::string good = WriteTwoSectionContainer("container_shared_good.ckpt");
  const std::vector<uint8_t> full = ReadFile(good);
  std::string path = TestPath("container_shared_race.ckpt");
  WriteFile(path, std::vector<uint8_t>(full.begin(),
                                       full.begin() + full.size() / 2));

  util::Result<io::ContainerReader> partial = io::ContainerReader::Open(path);
  EXPECT_FALSE(partial.ok());  // a plain Open fails, as it should

  WriteFile(path, full);  // the "rename" lands before OpenShared's retry
  util::Result<io::ContainerReader> reader =
      io::ContainerReader::OpenShared(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::remove(good.c_str());
  std::remove(path.c_str());
}

TEST(Container, ReadSectionsIsAllOrNothing) {
  std::string path = WriteTwoSectionContainer("container_multiread.ckpt");
  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  std::vector<std::vector<uint8_t>> sections;
  ASSERT_TRUE((*reader).ReadSections({"alpha", "beta"}, &sections).ok());
  ASSERT_EQ(sections.size(), 2u);
  std::string text;
  ASSERT_TRUE(io::BufferReader(sections[0]).ReadString(&text).ok());
  EXPECT_EQ(text, "alpha payload");
  std::vector<float> floats;
  ASSERT_TRUE(io::BufferReader(sections[1]).ReadFloats(&floats).ok());
  EXPECT_EQ(floats, (std::vector<float>{1.0f, 2.0f, 3.0f}));

  // One missing name fails the whole call and leaves *out untouched.
  std::vector<std::vector<uint8_t>> untouched = {{1, 2, 3}};
  EXPECT_FALSE(
      (*reader).ReadSections({"alpha", "gamma"}, &untouched).ok());
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0], (std::vector<uint8_t>{1, 2, 3}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edsr
