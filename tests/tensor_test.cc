// Unit and property tests for the tensor/autograd engine.
#include "src/tensor/tensor.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(TensorFactory, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.shape(), (Shape{2, 3}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);
  Tensor o = Tensor::Ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.at(i), 1.0f);
  Tensor f = Tensor::Full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
}

TEST(TensorFactory, FromVectorChecksShape) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_DEATH(Tensor::FromVector({1, 2, 3}, {2, 2}), "data size");
}

TEST(TensorFactory, RandnStatistics) {
  util::Rng rng(7);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f, 0.5f);
  double mean = 0.0;
  for (float v : t.data()) mean += v;
  mean /= t.numel();
  double var = 0.0;
  for (float v : t.data()) var += (v - mean) * (v - mean);
  var /= t.numel();
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.05);
}

TEST(TensorCore, SizeNegativeAxis) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(TensorCore, DetachSharesValuesDropsGraph) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, /*requires_grad=*/true);
  Tensor b = a * 2.0f;
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(1), 4.0f);
}

TEST(Arithmetic, AddSameShape) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::FromVector({10, 20, 30}, {3});
  Tensor c = a + b;
  EXPECT_EQ(c.at(0), 11.0f);
  EXPECT_EQ(c.at(2), 33.0f);
}

TEST(Arithmetic, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromVector({10, 20, 30}, {3});
  Tensor c = a + b;
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 2), 36.0f);
}

TEST(Arithmetic, BroadcastColumnVector) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromVector({100, 200}, {2, 1});
  Tensor c = a + b;
  EXPECT_EQ(c.at(0, 0), 101.0f);
  EXPECT_EQ(c.at(1, 0), 204.0f);
}

TEST(Arithmetic, BroadcastScalar) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor c = a * 3.0f;
  EXPECT_EQ(c.at(1, 1), 12.0f);
  Tensor d = 1.0f + a;
  EXPECT_EQ(d.at(0, 0), 2.0f);
}

TEST(Arithmetic, IncompatibleShapesDie) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(a + b, "broadcast");
}

TEST(Arithmetic, DivForward) {
  Tensor a = Tensor::FromVector({6, 9}, {2});
  Tensor b = Tensor::FromVector({2, 3}, {2});
  Tensor c = a / b;
  EXPECT_FLOAT_EQ(c.at(0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(1), 3.0f);
}

TEST(Autograd, SimpleChain) {
  // y = sum((2a + 3)^2); dy/da = 2*(2a+3)*2
  Tensor a = Tensor::FromVector({1, -2}, {2}, /*requires_grad=*/true);
  Tensor y = tensor::SumAll(tensor::Square(a * 2.0f + 3.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f * 5.0f * 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 2.0f * -1.0f * 2.0f);
}

TEST(Autograd, GradAccumulatesAcrossBackward) {
  Tensor a = Tensor::FromVector({1}, {1}, true);
  Tensor y1 = a * 2.0f;
  y1.Backward();
  Tensor y2 = a * 2.0f;
  y2.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  a.ZeroGrad();
  Tensor y3 = a * 2.0f;
  y3.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(Autograd, DiamondGraph) {
  // y = a*a + a*a must give dy/da = 4a even with shared subexpressions.
  Tensor a = Tensor::FromVector({3}, {1}, true);
  Tensor b = a * a;
  Tensor y = tensor::SumAll(b + b);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 12.0f);
}

TEST(Autograd, DetachBlocksGradient) {
  Tensor a = Tensor::FromVector({2}, {1}, true);
  Tensor y = tensor::SumAll(a * (a * 3.0f).Detach());
  y.Backward();
  // d/da [a * const(3a)] = 3a evaluated at a=2 -> 6.
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, true);
  Tensor y = a * 2.0f;
  EXPECT_DEATH(y.Backward(), "scalar");
}

// --- Finite-difference gradient checks over all differentiable ops. -------

TEST(GradCheck, BinaryOpsSameShape) {
  util::Rng rng(1);
  Tensor a = Tensor::Randn({3, 4}, &rng, 0.0f, 1.0f, true);
  Tensor b = Tensor::Randn({3, 4}, &rng, 0.0f, 1.0f, true);
  // Keep b away from zero for division.
  for (float& v : b.mutable_data()) v = v > 0 ? v + 0.5f : v - 0.5f;
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(a * b + a - b / (a * a + 2.0f)); }, {a, b});
}

TEST(GradCheck, BroadcastBinary) {
  util::Rng rng(2);
  Tensor a = Tensor::Randn({4, 3}, &rng, 0.0f, 1.0f, true);
  Tensor b = Tensor::Randn({1, 3}, &rng, 0.0f, 1.0f, true);
  Tensor c = Tensor::Randn({4, 1}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll((a + b) * c); }, {a, b, c});
}

TEST(GradCheck, UnaryOps) {
  util::Rng rng(3);
  Tensor a = Tensor::Rand({2, 5}, &rng, 0.2f, 2.0f, true);
  testing::ExpectGradientsMatch(
      [&] {
        return tensor::SumAll(tensor::Exp(a * 0.3f) + tensor::Log(a) +
                              tensor::Sqrt(a) + tensor::Tanh(a) +
                              tensor::Sigmoid(a));
      },
      {a});
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor a = Tensor::FromVector({-1.0f, -0.3f, 0.4f, 2.0f}, {4}, true);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::Relu(a) * 2.0f); }, {a});
}

TEST(GradCheck, PowAndSquare) {
  util::Rng rng(4);
  Tensor a = Tensor::Rand({6}, &rng, 0.5f, 1.5f, true);
  testing::ExpectGradientsMatch(
      [&] {
        return tensor::SumAll(tensor::PowScalar(a, 3.0f) + tensor::Square(a));
      },
      {a});
}

TEST(GradCheck, MatMul) {
  util::Rng rng(5);
  Tensor a = Tensor::Randn({3, 4}, &rng, 0.0f, 1.0f, true);
  Tensor b = Tensor::Randn({4, 2}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::MatMul(a, b)); }, {a, b});
}

TEST(GradCheck, TransposeReshape) {
  util::Rng rng(6);
  Tensor a = Tensor::Randn({3, 4}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] {
        Tensor t = tensor::Transpose(a);
        return tensor::SumAll(tensor::Square(tensor::Reshape(t, {2, 6})));
      },
      {a});
}

TEST(GradCheck, Reductions) {
  util::Rng rng(7);
  Tensor a = Tensor::Randn({3, 4}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] {
        Tensor s0 = tensor::Sum(a, 0);
        Tensor m1 = tensor::Mean(a, 1, /*keepdims=*/true);
        return tensor::SumAll(tensor::Square(s0)) + tensor::SumAll(a * m1);
      },
      {a});
}

TEST(GradCheck, ReduceMax) {
  // Distinct values keep the argmax stable under perturbation.
  Tensor a = Tensor::FromVector({1, 5, 3, 9, 2, 7}, {2, 3}, true);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::ReduceMax(a, 1)); }, {a});
}

TEST(GradCheck, NarrowIndexConcat) {
  util::Rng rng(8);
  Tensor a = Tensor::Randn({5, 3}, &rng, 0.0f, 1.0f, true);
  Tensor b = Tensor::Randn({2, 3}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] {
        Tensor sl = tensor::Narrow(a, 0, 1, 3);
        Tensor picked = tensor::IndexSelectRows(a, {0, 0, 4});
        Tensor cat = tensor::ConcatRows({sl, picked, b});
        return tensor::SumAll(tensor::Square(cat));
      },
      {a, b});
}

TEST(GradCheck, Composites) {
  util::Rng rng(9);
  Tensor a = Tensor::Randn({4, 6}, &rng, 0.0f, 1.0f, true);
  Tensor b = Tensor::Randn({4, 6}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] {
        return tensor::SumAll(tensor::CosineSimilarityRows(a, b)) +
               tensor::SumAll(tensor::Square(tensor::L2NormalizeRows(a)));
      },
      {a, b});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  util::Rng rng(10);
  Tensor logits = Tensor::Randn({5, 4}, &rng, 0.0f, 1.0f, true);
  std::vector<int64_t> labels = {0, 3, 1, 2, 1};
  testing::ExpectGradientsMatch(
      [&] { return tensor::CrossEntropyWithLogits(logits, labels); },
      {logits});
}

// --- Forward-value correctness for shape/reduction ops. ---------------------

TEST(Ops, NarrowMiddleAxis) {
  Tensor a = Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
                                {2, 3, 2});
  Tensor sl = tensor::Narrow(a, 1, 1, 2);
  EXPECT_EQ(sl.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(sl.at(0), 2.0f);   // a[0,1,0]
  EXPECT_EQ(sl.at(7), 11.0f);  // a[1,2,1]
}

TEST(Ops, SumAxisValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor s0 = tensor::Sum(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.at(0), 5.0f);
  EXPECT_EQ(s0.at(2), 9.0f);
  Tensor s1 = tensor::Sum(a, 1, /*keepdims=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1.at(0), 6.0f);
  EXPECT_EQ(s1.at(1), 15.0f);
}

TEST(Ops, MeanAllAndNegativeAxis) {
  Tensor a = Tensor::FromVector({2, 4, 6, 8}, {2, 2});
  EXPECT_FLOAT_EQ(tensor::MeanAll(a).item(), 5.0f);
  Tensor m = tensor::Mean(a, -1);
  EXPECT_FLOAT_EQ(m.at(0), 3.0f);
  EXPECT_FLOAT_EQ(m.at(1), 7.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(11);
  Tensor a = Tensor::Randn({6, 9}, &rng, 0.0f, 5.0f);
  Tensor s = tensor::SoftmaxRows(a);
  for (int64_t i = 0; i < 6; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 9; ++j) {
      float v = s.at(i, j);
      EXPECT_GE(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Ops, L2NormalizeRowsUnitNorm) {
  util::Rng rng(12);
  Tensor a = Tensor::Randn({5, 7}, &rng);
  Tensor n = tensor::L2NormalizeRows(a);
  for (int64_t i = 0; i < 5; ++i) {
    float norm = 0.0f;
    for (int64_t j = 0; j < 7; ++j) norm += n.at(i, j) * n.at(i, j);
    EXPECT_NEAR(norm, 1.0f, 1e-4f);
  }
}

TEST(Ops, CosineSimilarityBounds) {
  Tensor a = Tensor::FromVector({1, 0, 0, 1}, {2, 2});
  Tensor b = Tensor::FromVector({1, 0, 0, -1}, {2, 2});
  Tensor c = tensor::CosineSimilarityRows(a, b);
  EXPECT_NEAR(c.at(0), 1.0f, 1e-5f);
  EXPECT_NEAR(c.at(1), -1.0f, 1e-5f);
}

TEST(Ops, TransposeValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = tensor::Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_EQ(t.at(2, 0), 3.0f);
}

TEST(Ops, MatMulValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, {2, 2});
  Tensor c = tensor::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, ReshapeWildcard) {
  Tensor a = Tensor::Zeros({4, 6});
  Tensor r = tensor::Reshape(a, {2, -1});
  EXPECT_EQ(r.shape(), (Shape{2, 12}));
  EXPECT_DEATH(tensor::Reshape(a, {5, -1}), "infer");
}

// Property sweep: broadcasting forward values agree with a naive
// per-element reference over many random shape pairs.
class BroadcastPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastPropertyTest, MatchesNaiveReference) {
  util::Rng rng(GetParam());
  // Random compatible shapes of up to 3 dims.
  int nd = static_cast<int>(rng.UniformInt(1, 3));
  Shape sa, sb;
  for (int d = 0; d < nd; ++d) {
    int64_t size = rng.UniformInt(1, 4);
    bool stretch_a = rng.Bernoulli(0.3f);
    bool stretch_b = !stretch_a && rng.Bernoulli(0.3f);
    sa.push_back(stretch_a ? 1 : size);
    sb.push_back(stretch_b ? 1 : size);
  }
  Tensor a = Tensor::Randn(sa, &rng);
  Tensor b = Tensor::Randn(sb, &rng);
  Tensor c = a * b;
  // Naive reference with explicit index math.
  for (int64_t i = 0; i < c.numel(); ++i) {
    std::vector<int64_t> idx(nd);
    int64_t rem = i;
    for (int d = nd - 1; d >= 0; --d) {
      idx[d] = rem % c.shape()[d];
      rem /= c.shape()[d];
    }
    int64_t ia = 0, ib = 0;
    for (int d = 0; d < nd; ++d) {
      ia = ia * sa[d] + (sa[d] == 1 ? 0 : idx[d]);
      ib = ib * sb[d] + (sb[d] == 1 ? 0 : idx[d]);
    }
    EXPECT_FLOAT_EQ(c.at(i), a.at(ia) * b.at(ib)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, BroadcastPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace edsr
