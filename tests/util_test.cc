// Tests for the util module: Status/Result, Rng, Table, Stopwatch.
#include "src/util/status.h"

#include <cmath>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace edsr {
namespace {

using util::Result;
using util::Rng;
using util::Status;
using util::StatusCode;

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad dims");
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CheckAbortsOnError) {
  Status::OK().Check();  // no-op
  EXPECT_DEATH(Status::Internal("boom").Check(), "boom");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 42);
  Result<int> err(Status::InvalidArgument("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_DEATH(err.ValueOrDie(), "nope");
}

util::Status ReturnsEarly(bool fail) {
  EDSR_RETURN_NOT_OK(fail ? Status::IoError("inner") : Status::OK());
  return Status::Internal("reached end");
}

TEST(Result, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(ReturnsEarly(true).code(), StatusCode::kIoError);
  EXPECT_EQ(ReturnsEarly(false).code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, BetaInUnitInterval) {
  Rng rng(2);
  double mean = 0.0;
  for (int i = 0; i < 2000; ++i) {
    float v = rng.Beta(0.4f, 0.4f);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    mean += v;
  }
  EXPECT_NEAR(mean / 2000, 0.5, 0.05);  // symmetric Beta
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  std::vector<int64_t> perm = rng.Permutation(50);
  std::set<int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(4);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(20, 7);
  std::set<int64_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 5), "");
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<float> weights = {0.0f, 1.0f, 0.0f};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Categorical(weights), 1);
  // Rough proportionality check.
  std::vector<float> biased = {1.0f, 3.0f};
  int64_t ones = 0;
  for (int i = 0; i < 4000; ++i) ones += rng.Categorical(biased);
  EXPECT_NEAR(static_cast<double>(ones) / 4000, 0.75, 0.04);
  EXPECT_DEATH(rng.Categorical({-1.0f}), "non-negative");
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(6);
  Rng child = parent.Fork();
  // Not a strict statistical test — just different streams.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform() != child.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Table, TextAndCsvRendering) {
  util::Table table({"a", "b"});
  table.AddRow({"x", "1.0"});
  table.AddRow({"longer", "2.5"});
  std::string text = table.ToText();
  EXPECT_NE(text.find("| a"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(table.ToCsv(), "a,b\nx,1.0\nlonger,2.5\n");
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(Table, CsvRoundTripToDisk) {
  util::Table table({"h"});
  table.AddRow({"v"});
  std::string path = ::testing::TempDir() + "/edsr_table.csv";
  table.WriteCsv(path).Check();
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[16] = {0};
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_STREQ(buffer, "h\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Table, MeanStdFormatting) {
  EXPECT_EQ(util::Table::MeanStd(12.345, 0.678), "12.35 ± 0.68");
  EXPECT_EQ(util::Table::Fixed(3.14159, 3), "3.142");
}

TEST(MeanStdDev, MatchesManualComputation) {
  util::MeanStdDev stat = util::ComputeMeanStd({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stat.mean, 2.5);
  EXPECT_NEAR(stat.stddev, std::sqrt(1.25), 1e-12);
  util::MeanStdDev empty = util::ComputeMeanStd({});
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  double first = watch.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), first + 1.0);
}

}  // namespace
}  // namespace edsr
