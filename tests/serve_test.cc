// Tests for the src/serve subsystem: snapshot hot-swap semantics, the
// representation cache's bit-identical guarantee, micro-batcher admission
// control, the wire protocol's corruption tolerance, and the end-to-end
// checkpoint -> serve path over a loopback socket.
#include "src/serve/server.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cl/trainer.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/serve/cache.h"
#include "src/serve/protocol.h"
#include "src/serve/snapshot.h"
#include "src/serve/tcp_server.h"
#include "src/tensor/grad_mode.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

using serve::EmbedResult;
using serve::MessageType;
using serve::Request;
using serve::Response;
using serve::ServeClient;
using serve::ServeHandle;
using serve::ServeOptions;
using serve::SnapshotHandle;
using serve::TcpServer;

ssl::EncoderConfig TinyEncoderConfig() {
  ssl::EncoderConfig config;
  config.mlp_dims = {12, 16, 16};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  return config;
}

// Deterministic encoder: the same seed always yields the same weights, so a
// test can build a twin and compute reference representations out-of-band.
std::unique_ptr<ssl::Encoder> TinyEncoder(uint64_t seed) {
  util::Rng rng(seed);
  auto encoder = ssl::Encoder::Make(TinyEncoderConfig(), &rng);
  encoder->SetTraining(false);
  encoder->SetRequiresGrad(false);
  return encoder;
}

std::vector<float> TestInput(uint64_t seed, int64_t dim) {
  util::Rng rng(seed + 1000);
  std::vector<float> input(dim);
  for (float& v : input) v = rng.Uniform(-1.0f, 1.0f);
  return input;
}

// Batch-1 forward through a twin encoder: the bitwise reference for what a
// served representation must look like.
std::vector<float> ReferenceRepresentation(ssl::Encoder* encoder,
                                           const std::vector<float>& input) {
  tensor::NoGradGuard no_grad;
  tensor::Tensor rep = encoder->Forward(tensor::Tensor::FromVector(
      input, {1, static_cast<int64_t>(input.size())}));
  return rep.data();
}

ServeOptions TinyServeOptions() {
  ServeOptions options;
  options.load.encoder = TinyEncoderConfig();
  return options;
}

std::string TestDir(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- Snapshot registry -------------------------------------------------

TEST(ServeSnapshot, InstallBuildsQueryableSnapshot) {
  ServeHandle handle(TinyServeOptions());
  EXPECT_FALSE(handle.Health().ok);

  // A labeled 4-row memory bank: two well-separated classes.
  std::vector<float> bank;
  std::vector<int64_t> labels = {0, 0, 1, 1};
  for (int64_t i = 0; i < 4; ++i) {
    std::vector<float> row(12, i < 2 ? -1.0f : 1.0f);
    bank.insert(bank.end(), row.begin(), row.end());
  }
  SnapshotHandle snapshot =
      handle.InstallSnapshot(TinyEncoder(1), bank, labels, "unit-test");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->id(), 1u);
  EXPECT_EQ(snapshot->input_dim(), 12);
  EXPECT_EQ(snapshot->representation_dim(), 8);
  EXPECT_EQ(snapshot->knn_bank_size(), 4);
  EXPECT_EQ(snapshot->num_classes(), 2);

  ServeHandle::HealthInfo health = handle.Health();
  EXPECT_TRUE(health.ok);
  EXPECT_EQ(health.snapshot_id, 1u);
  EXPECT_EQ(health.source, "unit-test");

  EmbedResult embed = handle.Embed(TestInput(0, 12));
  ASSERT_TRUE(embed.status.ok()) << embed.status.ToString();
  EXPECT_EQ(embed.snapshot_id, 1u);
  EXPECT_EQ(static_cast<int64_t>(embed.representation.size()), 8);

  EmbedResult label = handle.KnnLabel(std::vector<float>(12, 1.0f));
  ASSERT_TRUE(label.status.ok()) << label.status.ToString();
  EXPECT_GE(label.label, 0);
  EXPECT_LT(label.label, 2);
}

TEST(ServeSnapshot, EmbedWithoutSnapshotFailsCleanly) {
  ServeHandle handle(TinyServeOptions());
  EmbedResult embed = handle.Embed(TestInput(0, 12));
  EXPECT_FALSE(embed.status.ok());
}

TEST(ServeSnapshot, WrongInputDimensionRejectedPerRequest) {
  ServeHandle handle(TinyServeOptions());
  handle.InstallSnapshot(TinyEncoder(1), {}, {}, "unit-test");
  EmbedResult embed = handle.Embed(std::vector<float>(5, 0.0f));
  EXPECT_EQ(embed.status.code(), util::StatusCode::kInvalidArgument);
}

TEST(ServeSnapshot, KnnLabelWithoutBankIsInvalidArgument) {
  ServeHandle handle(TinyServeOptions());
  handle.InstallSnapshot(TinyEncoder(1), {}, {}, "unit-test");
  EmbedResult label = handle.KnnLabel(TestInput(0, 12));
  EXPECT_EQ(label.status.code(), util::StatusCode::kInvalidArgument);
}

// The headline hot-swap invariant: under a concurrent stream of requests, a
// swap must never produce a response that mixes model versions — every
// representation is bitwise the old snapshot's or bitwise the new one's,
// consistent with its reported snapshot id.
TEST(ServeSwap, ConcurrentRequestsNeverSeeMixedVersions) {
  ServeHandle handle(TinyServeOptions());
  const std::vector<float> input = TestInput(7, 12);
  // Twin encoders with the installers' seeds give the two legal answers.
  const std::vector<float> rep_old =
      ReferenceRepresentation(TinyEncoder(1).get(), input);
  const std::vector<float> rep_new =
      ReferenceRepresentation(TinyEncoder(2).get(), input);
  ASSERT_NE(rep_old, rep_new);

  // Installs alternate seeds 1, 2, 1, 2, ... so snapshot ids map to weights
  // by parity: odd ids carry seed-1 weights, even ids seed-2.
  handle.InstallSnapshot(TinyEncoder(1), {}, {}, "old");
  std::atomic<bool> stop{false};
  std::atomic<int64_t> checked{0};
  std::atomic<int64_t> mixed{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        EmbedResult result = handle.Embed(input);
        if (!result.status.ok()) continue;  // transient overload is legal
        const std::vector<float>& expected =
            result.snapshot_id % 2 == 1 ? rep_old : rep_new;
        if (result.representation != expected) mixed.fetch_add(1);
        checked.fetch_add(1);
      }
    });
  }

  // Swap repeatedly while the clients hammer the handle.
  SnapshotHandle last;
  for (int swap = 0; swap < 8; ++swap) {
    uint64_t seed = (swap % 2 == 0) ? 2 : 1;
    last = handle.InstallSnapshot(TinyEncoder(seed), {}, {},
                                  "swap-" + std::to_string(swap));
  }
  // Let the clients observe the final snapshot before stopping.
  while (checked.load() < 200) std::this_thread::yield();
  stop.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(mixed.load(), 0);
  EXPECT_GE(handle.registry()->swaps(), 8);
  EXPECT_EQ(handle.registry()->Current()->id(), last->id());
}

// ---- Representation cache ----------------------------------------------

TEST(ServeCache, HitIsBitIdenticalToColdForward) {
  ServeHandle handle(TinyServeOptions());
  handle.InstallSnapshot(TinyEncoder(3), {}, {}, "unit-test");
  const std::vector<float> input = TestInput(9, 12);
  const std::vector<float> reference =
      ReferenceRepresentation(TinyEncoder(3).get(), input);

  // GetCounter (get-or-create): this test may be the first cache user in
  // the process, so the counter may not exist yet.
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.hits");
  int64_t hits_before = hits->Value();

  EmbedResult cold = handle.Embed(input);  // miss: fills the cache
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EmbedResult warm = handle.Embed(input);  // hit: served from the cache
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();

  EXPECT_EQ(cold.representation, reference);
  EXPECT_EQ(warm.representation, cold.representation);
  EXPECT_GE(hits->Value(), hits_before + 1);
}

TEST(ServeCache, EntriesAreScopedToSnapshotId) {
  serve::RepresentationCache cache(4);
  std::vector<float> input = {1.0f, 2.0f};
  cache.Insert(1, input, {10.0f});
  std::vector<float> out;
  EXPECT_TRUE(cache.Lookup(1, input, &out));
  EXPECT_FALSE(cache.Lookup(2, input, &out));
}

TEST(ServeCache, EvictsLeastRecentlyUsed) {
  serve::RepresentationCache cache(2);
  cache.Insert(1, {1.0f}, {10.0f});
  cache.Insert(1, {2.0f}, {20.0f});
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, {1.0f}, &out));  // promotes {1}
  cache.Insert(1, {3.0f}, {30.0f});            // evicts {2}
  EXPECT_TRUE(cache.Lookup(1, {1.0f}, &out));
  EXPECT_FALSE(cache.Lookup(1, {2.0f}, &out));
  EXPECT_TRUE(cache.Lookup(1, {3.0f}, &out));
  EXPECT_EQ(cache.size(), 2);
}

TEST(ServeCache, ZeroCapacityDisables) {
  serve::RepresentationCache cache(0);
  cache.Insert(1, {1.0f}, {10.0f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(1, {1.0f}, &out));
  EXPECT_EQ(cache.size(), 0);
}

// ---- Micro-batcher admission control -----------------------------------

TEST(ServeBatcher, QueueOverflowRejectsInsteadOfBlocking) {
  ServeOptions options = TinyServeOptions();
  options.batcher.max_queue = 4;
  options.cache_capacity = 0;  // every request must reach the queue
  ServeHandle handle(options);
  handle.InstallSnapshot(TinyEncoder(1), {}, {}, "unit-test");

  // A paused worker leaves submissions queued — the deterministic way to
  // fill the bounded queue.
  handle.batcher()->Pause();
  std::vector<std::future<EmbedResult>> futures(5);
  const std::vector<float> input = TestInput(0, 12);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(handle.batcher()->Submit(input, false, &futures[i]).ok());
  }
  util::Status overflow = handle.batcher()->Submit(input, false, &futures[4]);
  EXPECT_EQ(overflow.code(), util::StatusCode::kOverloaded);
  EXPECT_EQ(handle.batcher()->queue_depth(), 4);

  // Resume: the four admitted requests complete normally.
  handle.batcher()->Resume();
  for (int i = 0; i < 4; ++i) {
    EmbedResult result = futures[i].get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
}

TEST(ServeBatcher, StopCompletesQueuedRequestsWithOverloaded) {
  ServeOptions options = TinyServeOptions();
  options.cache_capacity = 0;
  ServeHandle handle(options);
  handle.InstallSnapshot(TinyEncoder(1), {}, {}, "unit-test");
  handle.batcher()->Pause();
  std::future<EmbedResult> future;
  ASSERT_TRUE(
      handle.batcher()->Submit(TestInput(0, 12), false, &future).ok());
  handle.batcher()->Stop();
  EXPECT_EQ(future.get().status.code(), util::StatusCode::kOverloaded);
}

// ---- Wire protocol ------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip) {
  Request request;
  request.type = MessageType::kEmbedRequest;
  request.request_id = 42;
  request.input = {1.5f, -2.0f, 0.25f};
  std::vector<uint8_t> frame = serve::EncodeRequest(request);
  // Strip the 8-byte header; DecodeRequest wants the payload.
  std::vector<uint8_t> payload(frame.begin() + 8, frame.end());
  Request decoded;
  ASSERT_TRUE(serve::DecodeRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, request.type);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.input, request.input);
}

TEST(ServeProtocol, ResponseRoundTripCarriesStatus) {
  Response response;
  response.type = MessageType::kEmbedResponse;
  response.request_id = 7;
  response.status = util::Status::Overloaded("busy");
  response.snapshot_id = 3;
  response.representation = {0.5f, 0.75f};
  std::vector<uint8_t> frame = serve::EncodeResponse(response);
  std::vector<uint8_t> payload(frame.begin() + 8, frame.end());
  Response decoded;
  ASSERT_TRUE(serve::DecodeResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.status.code(), util::StatusCode::kOverloaded);
  EXPECT_EQ(decoded.status.message(), "busy");
  EXPECT_EQ(decoded.snapshot_id, 3u);
  EXPECT_EQ(decoded.representation, response.representation);
}

// Fuzz contract: no truncation or single-bit corruption of a valid payload
// may crash the decoder — every mutation yields OK or a clean error.
TEST(ServeProtocol, FuzzTruncatedAndBitFlippedPayloads) {
  Request request;
  request.type = MessageType::kKnnLabelRequest;
  request.request_id = 99;
  request.input = TestInput(1, 12);
  std::vector<uint8_t> frame = serve::EncodeRequest(request);
  std::vector<uint8_t> payload(frame.begin() + 8, frame.end());

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> truncated(payload.begin(), payload.begin() + cut);
    Request out;
    serve::DecodeRequest(truncated, &out);  // must not crash
  }
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = payload;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      Request out;
      serve::DecodeRequest(flipped, &out);  // must not crash
    }
  }
  // Trailing garbage is rejected, not silently ignored.
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  Request out;
  EXPECT_FALSE(serve::DecodeRequest(padded, &out).ok());
}

// ---- Loopback TCP server ------------------------------------------------

TEST(ServeTcp, EndToEndLoopbackRoundTrip) {
  ServeHandle handle(TinyServeOptions());
  std::vector<float> bank;
  std::vector<int64_t> labels = {0, 1};
  bank.insert(bank.end(), 12, -1.0f);
  bank.insert(bank.end(), 12, 1.0f);
  handle.InstallSnapshot(TinyEncoder(5), bank, labels, "tcp-test");

  TcpServer server(&handle);
  ASSERT_TRUE(server.Start(0).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  ServeClient::HealthReply health = client.Health();
  ASSERT_TRUE(health.status.ok()) << health.status.ToString();
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.source, "tcp-test");

  const std::vector<float> input = TestInput(4, 12);
  EmbedResult embed = client.Embed(input);
  ASSERT_TRUE(embed.status.ok()) << embed.status.ToString();
  EXPECT_EQ(embed.representation,
            ReferenceRepresentation(TinyEncoder(5).get(), input));

  EmbedResult label = client.KnnLabel(std::vector<float>(12, 1.0f));
  ASSERT_TRUE(label.status.ok()) << label.status.ToString();
  EXPECT_GE(label.label, 0);

  util::Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  obs::Json parsed;
  ASSERT_TRUE(obs::Json::Parse(*stats, &parsed));
  ASSERT_TRUE(parsed.Has("snapshot"));
  EXPECT_EQ(parsed.Find("snapshot")->Find("source")->AsString(), "tcp-test");

  client.Close();
  server.Stop();
  EXPECT_EQ(server.connections_accepted(), 1);
}

TEST(ServeTcp, ServerErrorStatusReachesClient) {
  ServeHandle handle(TinyServeOptions());  // no snapshot installed
  TcpServer server(&handle);
  ASSERT_TRUE(server.Start(0).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  EmbedResult embed = client.Embed(TestInput(0, 12));
  EXPECT_FALSE(embed.status.ok());
  EXPECT_EQ(embed.status.code(), util::StatusCode::kInternal);
}

TEST(ServeTcp, MalformedFrameGetsErrorResponseThenDisconnect) {
  ServeHandle handle(TinyServeOptions());
  TcpServer server(&handle);
  ASSERT_TRUE(server.Start(0).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  // A frame with valid magic/size but an unknown message type.
  io::BufferWriter garbage;
  garbage.WriteU32(serve::kFrameMagic);
  garbage.WriteU32(9);
  garbage.WriteU8(200);  // not a request type
  garbage.WriteU64(1);
  ASSERT_TRUE(client.SendRaw(garbage.TakeBytes()).ok());

  std::vector<uint8_t> payload;
  ASSERT_TRUE(client.ReadRawPayload(&payload).ok());
  Response response;
  ASSERT_TRUE(serve::DecodeResponse(payload, &response).ok());
  EXPECT_EQ(response.type, MessageType::kErrorResponse);
  EXPECT_FALSE(response.status.ok());

  // The server hangs up after a framing error: the next read sees EOF.
  EXPECT_FALSE(client.ReadRawPayload(&payload).ok());
}

TEST(ServeTcp, OversizedFrameDeclarationIsRejected) {
  ServeHandle handle(TinyServeOptions());
  TcpServer server(&handle);
  ASSERT_TRUE(server.Start(0).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  io::BufferWriter huge;
  huge.WriteU32(serve::kFrameMagic);
  huge.WriteU32(serve::kMaxFramePayload + 1);  // declared, never sent
  ASSERT_TRUE(client.SendRaw(huge.TakeBytes()).ok());

  std::vector<uint8_t> payload;
  ASSERT_TRUE(client.ReadRawPayload(&payload).ok());
  Response response;
  ASSERT_TRUE(serve::DecodeResponse(payload, &response).ok());
  EXPECT_EQ(response.type, MessageType::kErrorResponse);
  EXPECT_FALSE(response.status.ok());
}

// ---- Checkpoint -> serve end to end ------------------------------------

cl::StrategyContext ServeTrainContext() {
  cl::StrategyContext context;
  context.encoder.mlp_dims = {48, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.epochs = 1;
  context.batch_size = 16;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = 3;
  return context;
}

data::TaskSequence ServeTrainSequence() {
  data::SyntheticImageConfig config;
  config.name = "serve-e2e";
  config.num_classes = 4;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 3.5f;
  config.seed = 17;
  auto pair = MakeSyntheticImageData(config);
  return data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);
}

TEST(ServeCheckpoint, LoadAndSwapServesTrainedRunBitIdentically) {
  cl::StrategyContext context = ServeTrainContext();
  data::TaskSequence sequence = ServeTrainSequence();

  cl::CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("serve_e2e_ckpt");
  core::Edsr strategy(context);
  cl::RunContinual(&strategy, sequence, cl::EvalOptions(), checkpoint);

  ServeOptions options;
  options.load.encoder = context.encoder;
  ServeHandle handle(options);
  util::Status loaded =
      handle.LoadAndSwap(checkpoint.directory + "/" + checkpoint.filename);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();

  SnapshotHandle snapshot = handle.registry()->Current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->increments_seen(), 2);
  // EDSR's replay memory doubles as the labeled knn bank.
  EXPECT_GT(snapshot->knn_bank_size(), 0);
  EXPECT_LE(snapshot->knn_bank_size(), 2 * context.memory_per_task);

  // Served representations are bitwise what the trained encoder produces.
  strategy.encoder()->SetTraining(false);
  const std::vector<float> input = TestInput(2, 48);
  EmbedResult embed = handle.Embed(input);
  ASSERT_TRUE(embed.status.ok()) << embed.status.ToString();
  EXPECT_EQ(embed.representation,
            ReferenceRepresentation(strategy.encoder(), input));

  EmbedResult label = handle.KnnLabel(input);
  ASSERT_TRUE(label.status.ok()) << label.status.ToString();
  EXPECT_GE(label.label, 0);
  EXPECT_LT(label.label, snapshot->num_classes());
}

TEST(ServeCheckpoint, CorruptCheckpointFailsCleanlyAndKeepsOldSnapshot) {
  cl::StrategyContext context = ServeTrainContext();
  data::TaskSequence sequence = ServeTrainSequence();
  cl::CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("serve_corrupt_ckpt");
  core::Edsr strategy(context);
  cl::RunContinual(&strategy, sequence, cl::EvalOptions(), checkpoint);
  const std::string path =
      checkpoint.directory + "/" + checkpoint.filename;

  ServeOptions options;
  options.load.encoder = context.encoder;
  ServeHandle handle(options);
  ASSERT_TRUE(handle.LoadAndSwap(path).ok());
  uint64_t original = handle.registry()->Current()->id();

  // Flip one byte mid-file: the CRC check must reject the reload and the
  // original snapshot must keep serving.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(600);
    char byte = 0;
    file.seekg(600);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(600);
    file.write(&byte, 1);
  }
  util::Status reload = handle.LoadAndSwap(path);
  EXPECT_FALSE(reload.ok());
  ASSERT_NE(handle.registry()->Current(), nullptr);
  EXPECT_EQ(handle.registry()->Current()->id(), original);
  EmbedResult embed = handle.Embed(TestInput(2, 48));
  EXPECT_TRUE(embed.status.ok()) << embed.status.ToString();
}

TEST(ServeCheckpoint, MissingFileIsCleanError) {
  ServeHandle handle(TinyServeOptions());
  util::Status status = handle.LoadAndSwap(TestDir("does_not_exist.ckpt"));
  EXPECT_FALSE(status.ok());
}

// ---- Live ops plane ------------------------------------------------------

// A loopback server with a two-class bank: the fixture for every ops test.
struct OpsServer {
  OpsServer() : handle(TinyServeOptions()), server(&handle) {
    std::vector<float> bank;
    std::vector<int64_t> labels = {0, 1};
    bank.insert(bank.end(), 12, -1.0f);
    bank.insert(bank.end(), 12, 1.0f);
    handle.InstallSnapshot(TinyEncoder(7), bank, labels, "ops-test");
    EDSR_CHECK(server.Start(0).ok());
  }
  ~OpsServer() { server.Stop(); }

  ServeHandle handle;
  TcpServer server;
};

TEST(ServeOps, MetricsRequestReturnsRegistrySnapshot) {
  OpsServer ops;
  ServeClient client;
  ASSERT_TRUE(client.Connect(ops.server.port()).ok());
  const int kRequests = 5;
  for (int r = 0; r < kRequests; ++r) {
    ASSERT_TRUE(client.Embed(TestInput(r, 12)).status.ok());
  }

  util::Result<std::string> body = client.Metrics(serve::MetricsMode::kJson);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  obs::Json parsed;
  ASSERT_TRUE(obs::Json::Parse(*body, &parsed)) << *body;
  const obs::Json* metrics = parsed.Find("metrics");
  ASSERT_TRUE(metrics != nullptr);
  const obs::Json* latency = metrics->Find("latency");
  ASSERT_TRUE(latency != nullptr);
  const obs::Json* embed = latency->Find("serve.lat.embed");
  ASSERT_TRUE(embed != nullptr) << *body;
  // The registry is process-global, so earlier tests may have contributed.
  EXPECT_GE(embed->Find("count")->AsInt(), kRequests);
  EXPECT_GT(embed->Find("p99_us")->AsInt(), 0);
  // No SLO tracker attached: the slo field is present but empty.
  const obs::Json* slo = parsed.Find("slo");
  ASSERT_TRUE(slo != nullptr && slo->is_array());
  EXPECT_EQ(slo->size(), 0);
}

TEST(ServeOps, MetricsRequestPrometheusTextMode) {
  OpsServer ops;
  ServeClient client;
  ASSERT_TRUE(client.Connect(ops.server.port()).ok());
  ASSERT_TRUE(client.Embed(TestInput(1, 12)).status.ok());

  util::Result<std::string> body =
      client.Metrics(serve::MetricsMode::kPrometheusText);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE((*body).find("serve_lat_embed_us{quantile=\"0.99\"}"),
            std::string::npos)
      << *body;
  EXPECT_NE((*body).find("serve_req_embed"), std::string::npos);
  EXPECT_NE((*body).find("# TYPE"), std::string::npos);
}

TEST(ServeOps, StatusRequestDescribesTheServer) {
  OpsServer ops;
  ServeClient client;
  ASSERT_TRUE(client.Connect(ops.server.port()).ok());
  ASSERT_TRUE(client.Embed(TestInput(2, 12)).status.ok());

  util::Result<std::string> body = client.Status();
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  obs::Json parsed;
  ASSERT_TRUE(obs::Json::Parse(*body, &parsed)) << *body;
  EXPECT_EQ(parsed.Find("snapshot")->Find("source")->AsString(), "ops-test");
  EXPECT_GE(parsed.Find("uptime_ms")->AsInt(), 0);
  // rid 1 was the embed, rid 2 is this status request itself.
  EXPECT_GE(parsed.Find("last_rid")->AsInt(), 2);
  EXPECT_EQ(parsed.Find("connections_accepted")->AsInt(), 1);
  ASSERT_TRUE(parsed.Has("queue"));
  EXPECT_GE(parsed.Find("queue")->Find("max_batch")->AsInt(), 1);
  ASSERT_TRUE(parsed.Has("cache"));
  ASSERT_TRUE(parsed.Has("dispatch"));
  EXPECT_GE(parsed.Find("dispatch")->Find("threads")->AsInt(), 1);
  EXPECT_EQ(parsed.Find("slo_breached")->AsInt(), 0);
}

TEST(ServeOps, StageHistogramsCoverThePipeline) {
  OpsServer ops;
  ServeClient client;
  ASSERT_TRUE(client.Connect(ops.server.port()).ok());
  ASSERT_TRUE(client.Embed(TestInput(3, 12)).status.ok());
  // RecordTrace runs after the reply frame is written, so a lone Embed can
  // race this thread's registry read. The connection thread is sequential:
  // once this follow-up request is answered, the embed's trace is recorded.
  ASSERT_TRUE(client.Status().ok());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const char* stage : {"accept", "queue", "forward", "reply"}) {
    std::string name = std::string("serve.stage.") + stage;
    ASSERT_TRUE(registry.Has(name)) << name;
    EXPECT_GE(registry.Value(name + ".count"), 1.0) << name;
  }
}

TEST(ServeOps, SloBreachSurfacesThroughMetricsRequest) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  auto objectives = obs::ParseSloSpec("embed:p99<1us");
  ASSERT_TRUE(objectives.ok());
  obs::SloTracker tracker(std::move(objectives).ValueOrDie(), /*window=*/4);
  tracker.Bind("embed", registry.GetLatencyHisto("serve.lat.embed"),
               registry.GetCounter("serve.req.embed"),
               registry.GetCounter("serve.err.embed"));

  OpsServer ops;
  ops.server.SetSloTracker(&tracker);
  ServeClient client;
  ASSERT_TRUE(client.Connect(ops.server.port()).ok());

  // Baseline evaluation (kMetrics evaluates the tracker server-side), then
  // traffic that cannot possibly meet a 1us p99, then a second evaluation.
  ASSERT_TRUE(client.Metrics(serve::MetricsMode::kJson).ok());
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(client.Embed(TestInput(r, 12)).status.ok());
  }
  util::Result<std::string> body = client.Metrics(serve::MetricsMode::kJson);
  ASSERT_TRUE(body.ok());
  obs::Json parsed;
  ASSERT_TRUE(obs::Json::Parse(*body, &parsed)) << *body;
  const obs::Json* slo = parsed.Find("slo");
  ASSERT_TRUE(slo != nullptr && slo->is_array());
  ASSERT_EQ(slo->size(), 1);
  EXPECT_EQ(slo->at(0).Find("class")->AsString(), "embed");
  EXPECT_TRUE(slo->at(0).Find("breach")->AsBool()) << *body;
  EXPECT_EQ(registry.Value("slo.embed.p99.breach"), 1.0);
  EXPECT_EQ(tracker.breached(), 1);

  // kStatus reports the breach too.
  util::Result<std::string> status_body = client.Status();
  ASSERT_TRUE(status_body.ok());
  obs::Json status_parsed;
  ASSERT_TRUE(obs::Json::Parse(*status_body, &status_parsed));
  EXPECT_EQ(status_parsed.Find("slo_breached")->AsInt(), 1);

  // Detach before the tracker goes out of scope.
  ops.server.SetSloTracker(nullptr);
}

TEST(ServeOps, ConcurrentMetricsWhileEmbeddingNeverTears) {
  OpsServer ops;
  const int64_t rid_before = ops.server.last_rid();

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 12;
  // Per frame: one embed + one metrics + one status = 3 rids.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ServeClient client;
      if (!client.Connect(ops.server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRoundsPerThread; ++r) {
        if (!client.Embed(TestInput(t * 100 + r, 12)).status.ok()) {
          failures.fetch_add(1);
        }
        serve::MetricsMode mode = (r % 2 == 0)
                                      ? serve::MetricsMode::kJson
                                      : serve::MetricsMode::kPrometheusText;
        util::Result<std::string> metrics = client.Metrics(mode);
        if (!metrics.ok()) {
          failures.fetch_add(1);
        } else if (mode == serve::MetricsMode::kJson) {
          // Torn/interleaved writes would break the JSON framing.
          obs::Json parsed;
          if (!obs::Json::Parse(*metrics, &parsed)) failures.fetch_add(1);
        } else if ((*metrics).find("serve_lat_embed_us") ==
                   std::string::npos) {
          failures.fetch_add(1);
        }
        util::Result<std::string> status = client.Status();
        obs::Json status_parsed;
        if (!status.ok() || !obs::Json::Parse(*status, &status_parsed)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Every frame got a unique, monotone rid: the final last_rid advanced by
  // exactly the number of requests issued across all connections.
  EXPECT_EQ(ops.server.last_rid() - rid_before,
            kThreads * kRoundsPerThread * 3);
  EXPECT_EQ(ops.server.connections_accepted(), kThreads);
}

}  // namespace
}  // namespace edsr
