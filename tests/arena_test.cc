// Tests for the thread-local scratch arena: bump allocation + scope rewind,
// the recycled-vector pool, stats counters, and the headline guarantee that
// a steady-state train step performs zero tensor-scratch heap allocations.
#include "src/tensor/arena.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

namespace arena = tensor::arena;

bool Aligned64(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % 64 == 0;
}

TEST(Arena, BumpAllocationsAre64ByteAligned) {
  arena::Scope scope;
  // Odd sizes on purpose: alignment must hold regardless of request size.
  EXPECT_TRUE(Aligned64(arena::AllocFloats(3)));
  EXPECT_TRUE(Aligned64(arena::AllocFloats(1)));
  EXPECT_TRUE(Aligned64(arena::AllocDoubles(7)));
  EXPECT_TRUE(Aligned64(arena::AllocInt64(5)));
}

TEST(Arena, ScopeRewindReusesTheSameMemory) {
  float* first = nullptr;
  {
    arena::Scope scope;
    first = arena::AllocFloats(100);
    first[0] = 1.0f;
  }
  {
    arena::Scope scope;
    float* second = arena::AllocFloats(100);
    // After the outer scope rewound, the same carve position serves again.
    EXPECT_EQ(first, second);
  }
}

TEST(Arena, NestedScopesRewindIndependently) {
  arena::Scope outer;
  float* a = arena::AllocFloats(10);
  float* inner_ptr = nullptr;
  {
    arena::Scope inner;
    inner_ptr = arena::AllocFloats(10);
    EXPECT_NE(a, inner_ptr);
  }
  // The inner scope's rewind must not release the outer allocation.
  arena::Scope probe;
  float* again = arena::AllocFloats(10);
  EXPECT_EQ(again, inner_ptr);  // inner position was released
  a[0] = 42.0f;                 // outer allocation still writable
  EXPECT_EQ(a[0], 42.0f);
}

TEST(Arena, LargeAllocationGetsDedicatedBlock) {
  arena::Scope scope;
  // Far larger than the 1 MiB bump block: must still succeed and align.
  float* big = arena::AllocFloats(3 * (int64_t{1} << 20));
  EXPECT_TRUE(Aligned64(big));
  big[0] = 1.0f;
  big[3 * (int64_t{1} << 20) - 1] = 2.0f;
}

TEST(Arena, AcquireZeroedVectorIsZeroed) {
  // Dirty a vector, recycle it, and re-acquire the same capacity class.
  std::vector<float> v = arena::AcquireVector(64);
  for (float& x : v) x = 13.0f;
  arena::RecycleVector(std::move(v));
  std::vector<float> z = arena::AcquireZeroedVector(64);
  ASSERT_EQ(z.size(), 64u);
  for (float x : z) EXPECT_EQ(x, 0.0f);
}

TEST(Arena, RecycledVectorIsReusedWithoutReallocation) {
  arena::ResetStats();
  std::vector<float> v = arena::AcquireVector(100);
  const float* buffer = v.data();
  arena::RecycleVector(std::move(v));
  ASSERT_GE(arena::Stats().pool_returns, 1);

  // Re-acquiring a smaller size from the same power-of-two class must hit
  // the pool and resize in place (capacity >= bucket floor >= request).
  std::vector<float> w = arena::AcquireVector(70);
  EXPECT_EQ(w.data(), buffer);
  EXPECT_EQ(w.size(), 70u);
  ASSERT_GE(arena::Stats().pool_hits, 1);
  arena::RecycleVector(std::move(w));
}

TEST(Arena, StatsCountersTrackActivity) {
  arena::ResetStats();
  {
    arena::Scope scope;
    arena::AllocFloats(8);
    arena::AllocFloats(8);
  }
  const arena::ArenaStats& stats = arena::Stats();
  EXPECT_EQ(stats.bump_allocs, 2);
  EXPECT_EQ(stats.scope_resets, 1);
  EXPECT_GE(stats.bump_bytes_peak, 2 * 64);  // two aligned 32-byte requests

  std::vector<float> v = arena::AcquireVector(16);
  arena::RecycleVector(std::move(v));
  std::vector<float> w = arena::AcquireVector(16);
  EXPECT_GE(arena::Stats().pool_hits, 1);
  arena::RecycleVector(std::move(w));
}

TEST(Arena, SteadyStateTrainStepIsHeapAllocationFree) {
  // The acceptance criterion for the arena: once buffer sizes have been seen
  // (warmup), a full forward/backward train step acquires every tensor
  // buffer, grad buffer, and packing scratch from the arena — zero pool
  // misses and zero fresh bump blocks.
  util::Rng rng(0);
  tensor::Tensor w1 = tensor::Tensor::Randn({48, 32}, &rng, 0, 0.05f, true);
  tensor::Tensor w2 = tensor::Tensor::Randn({32, 16}, &rng, 0, 0.05f, true);
  tensor::Tensor x = tensor::Tensor::Randn({16, 48}, &rng);

  auto step = [&]() {
    w1.ZeroGrad();
    w2.ZeroGrad();
    tensor::Tensor h = tensor::Relu(tensor::MatMul(x, w1));
    tensor::Tensor loss =
        tensor::MeanAll(tensor::Square(tensor::MatMul(h, w2)));
    loss.Backward();
  };

  for (int i = 0; i < 5; ++i) step();  // warm the pool and bump blocks

  arena::ResetStats();
  for (int i = 0; i < 3; ++i) step();
  // Read through the metrics registry's "arena.*" callback gauges — the
  // same path run records use — so this test also guards the telemetry
  // bridge, not just the TLS counters.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.Value("arena.pool_misses"), 0.0)
      << "steady-state step acquired a tensor buffer the pool could not serve";
  EXPECT_EQ(registry.Value("arena.bump_block_allocs"), 0.0)
      << "steady-state step grew the bump region";
  EXPECT_GT(registry.Value("arena.pool_hits"), 0.0)
      << "step did not exercise the pool at all";
}

}  // namespace
}  // namespace edsr
