// Tests for encoders and CSSL losses.
#include "src/ssl/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/optim/optimizer.h"
#include "src/ssl/encoder.h"
#include "src/tensor/ops.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using ssl::Encoder;
using ssl::EncoderConfig;
using tensor::Shape;
using tensor::Tensor;

EncoderConfig SmallMlpEncoderConfig() {
  EncoderConfig config;
  config.backbone = EncoderConfig::BackboneType::kMlp;
  config.mlp_dims = {12, 16, 16};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  return config;
}

TEST(Encoder, MlpForwardShape) {
  util::Rng rng(0);
  Encoder encoder(SmallMlpEncoderConfig(), &rng);
  Tensor x = Tensor::Randn({5, 12}, &rng);
  Tensor z = encoder.Forward(x);
  EXPECT_EQ(z.shape(), (Shape{5, 8}));
  EXPECT_EQ(encoder.representation_dim(), 8);
}

TEST(Encoder, ConvForwardShape) {
  util::Rng rng(1);
  EncoderConfig config;
  config.backbone = EncoderConfig::BackboneType::kConv;
  config.conv = {3, 8, 8, 4};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  Encoder encoder(config, &rng);
  Tensor x = Tensor::Randn({2, 3 * 8 * 8}, &rng);
  EXPECT_EQ(encoder.Forward(x).shape(), (Shape{2, 8}));
}

TEST(Encoder, InputHeadsUnifyDims) {
  util::Rng rng(2);
  EncoderConfig config = SmallMlpEncoderConfig();
  config.input_head_dims = {7, 20, 3};
  Encoder encoder(config, &rng);
  EXPECT_TRUE(encoder.has_input_heads());
  encoder.SetActiveHead(0);
  EXPECT_EQ(encoder.Forward(Tensor::Randn({4, 7}, &rng)).shape(),
            (Shape{4, 8}));
  encoder.SetActiveHead(1);
  EXPECT_EQ(encoder.Forward(Tensor::Randn({4, 20}, &rng)).shape(),
            (Shape{4, 8}));
  encoder.SetActiveHead(2);
  EXPECT_EQ(encoder.Forward(Tensor::Randn({4, 3}, &rng)).shape(),
            (Shape{4, 8}));
}

TEST(Encoder, HeadOutOfRangeDies) {
  util::Rng rng(3);
  EncoderConfig config = SmallMlpEncoderConfig();
  config.input_head_dims = {7};
  Encoder encoder(config, &rng);
  EXPECT_DEATH(encoder.SetActiveHead(1), "");
  Encoder no_heads(SmallMlpEncoderConfig(), &rng);
  EXPECT_DEATH(no_heads.SetActiveHead(0), "without input heads");
}

TEST(Encoder, TeacherTwinCopiesState) {
  util::Rng rng1(4), rng2(5);
  EncoderConfig config = SmallMlpEncoderConfig();
  auto student = Encoder::Make(config, &rng1);
  auto teacher = Encoder::Make(config, &rng2);
  teacher->CopyStateFrom(*student);
  teacher->SetRequiresGrad(false);
  teacher->SetTraining(false);
  student->SetTraining(false);
  Tensor x = Tensor::Randn({3, 12}, &rng1);
  Tensor zs = student->Forward(x);
  Tensor zt = teacher->Forward(x);
  for (int64_t i = 0; i < zs.numel(); ++i) EXPECT_FLOAT_EQ(zs.at(i), zt.at(i));
  EXPECT_FALSE(zt.requires_grad());
}

TEST(NegativeCosine, IdenticalInputsGiveMinusOne) {
  util::Rng rng(6);
  Tensor a = Tensor::Randn({4, 8}, &rng);
  EXPECT_NEAR(ssl::NegativeCosine(a, a).item(), -1.0f, 1e-5f);
}

TEST(SimSiamLoss, BoundedAndSymmetricStructure) {
  util::Rng rng(7);
  ssl::SimSiamLoss loss(8, 8, &rng);
  Tensor z1 = Tensor::Randn({6, 8}, &rng);
  Tensor z2 = Tensor::Randn({6, 8}, &rng);
  float v = loss.Loss(z1, z2).item();
  EXPECT_GE(v, -1.0f);
  EXPECT_LE(v, 1.0f);
  EXPECT_FALSE(loss.Parameters().empty());
}

TEST(SimSiamLoss, GradFlowsToInputsNotTargets) {
  util::Rng rng(8);
  ssl::SimSiamLoss loss(4, 4, &rng);
  Tensor z1 = Tensor::Randn({5, 4}, &rng, 0.0f, 1.0f, true);
  Tensor z2 = Tensor::Randn({5, 4}, &rng, 0.0f, 1.0f, true);
  loss.Loss(z1, z2).Backward();
  // Both get gradients (each side is a prediction input once).
  double g1 = 0.0, g2 = 0.0;
  for (float g : z1.grad()) g1 += std::fabs(g);
  for (float g : z2.grad()) g2 += std::fabs(g);
  EXPECT_GT(g1, 0.0);
  EXPECT_GT(g2, 0.0);
}

TEST(SimSiamLoss, AlignTargetIsConstant) {
  util::Rng rng(9);
  ssl::SimSiamLoss loss(4, 4, &rng);
  Tensor student = Tensor::Randn({5, 4}, &rng, 0.0f, 1.0f, true);
  Tensor target = Tensor::Randn({5, 4}, &rng, 0.0f, 1.0f, true);
  loss.Align(student, target).Backward();
  double gs = 0.0;
  for (float g : student.grad()) gs += std::fabs(g);
  EXPECT_GT(gs, 0.0);
  EXPECT_TRUE(target.grad().empty());  // detached: no grad buffer allocated
}

TEST(SimSiamLoss, TrainingReducesLoss) {
  // Optimizing an encoder + SimSiam on two noisy views of fixed anchors
  // should push the loss toward -1.
  util::Rng rng(10);
  Encoder encoder(SmallMlpEncoderConfig(), &rng);
  ssl::SimSiamLoss loss(8, 8, &rng);
  std::vector<Tensor> params = encoder.Parameters();
  for (const Tensor& p : loss.Parameters()) params.push_back(p);
  optim::SgdOptions opt;
  opt.lr = 0.05f;
  optim::Sgd sgd(params, opt);
  Tensor anchors = Tensor::Randn({16, 12}, &rng);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    Tensor v1 = anchors + Tensor::Randn({16, 12}, &rng, 0.0f, 0.05f);
    Tensor v2 = anchors + Tensor::Randn({16, 12}, &rng, 0.0f, 0.05f);
    sgd.ZeroGrad();
    Tensor l = loss.Loss(encoder.Forward(v1), encoder.Forward(v2));
    l.Backward();
    sgd.Step();
    if (step == 0) first = l.item();
    last = l.item();
  }
  EXPECT_LT(last, first);
  EXPECT_LT(last, -0.5f);
}

TEST(BarlowTwinsLoss, ZeroForPerfectlyCorrelatedViews) {
  // Identical standardized views with exactly identity cross-correlation.
  util::Rng rng(11);
  ssl::BarlowTwinsLoss loss(5e-3f);
  // Build z with orthonormal-ish independent dims: large random batch.
  Tensor z = Tensor::Randn({256, 4}, &rng);
  float v = loss.Loss(z, z).item();
  // C_ii = 1 exactly; off-diagonals are small but nonzero for finite batch.
  EXPECT_LT(v, 0.1f);
}

TEST(BarlowTwinsLoss, PenalizesUncorrelatedViews) {
  util::Rng rng(12);
  ssl::BarlowTwinsLoss loss(5e-3f);
  Tensor z1 = Tensor::Randn({64, 4}, &rng);
  Tensor z2 = Tensor::Randn({64, 4}, &rng);  // independent
  float independent = loss.Loss(z1, z2).item();
  float correlated = loss.Loss(z1, z1).item();
  EXPECT_GT(independent, correlated + 0.5f);
}

TEST(BarlowTwinsLoss, GradCheck) {
  util::Rng rng(13);
  ssl::BarlowTwinsLoss loss(0.01f);
  Tensor z1 = Tensor::Randn({8, 3}, &rng, 0.0f, 1.0f, true);
  Tensor z2 = Tensor::Randn({8, 3}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch([&] { return loss.Loss(z1, z2); }, {z1, z2},
                                1e-2f, 5e-2f);
}

TEST(MakeCsslLoss, FactoryKinds) {
  util::Rng rng(14);
  auto simsiam = ssl::MakeCsslLoss(ssl::CsslLossKind::kSimSiam, 8, &rng);
  auto barlow = ssl::MakeCsslLoss(ssl::CsslLossKind::kBarlowTwins, 8, &rng);
  EXPECT_EQ(simsiam->name(), "simsiam");
  EXPECT_EQ(barlow->name(), "barlowtwins");
  EXPECT_FALSE(simsiam->Parameters().empty());
  EXPECT_TRUE(barlow->Parameters().empty());
}

}  // namespace
}  // namespace edsr
