// Streaming subsystem tests: dirty-data transforms (determinism, noise
// rates, power-law imbalance), spec-chain parsing, cycle triggers, source
// state round-trips, and the headline driver guarantee — a boundary-free
// run killed mid-stream and resumed from its checkpoint produces the
// bit-identical cycle records of an uninterrupted run.
#include "src/stream/driver.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/cl/factory.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/stream/source.h"
#include "src/stream/transform.h"
#include "src/stream/trigger.h"

namespace edsr {
namespace {

using stream::StreamRegistry;
using stream::StreamSample;
using stream::StreamSource;
using stream::StreamTransform;
using stream::TriggerContext;
using stream::TriggerRegistry;

data::SyntheticImageConfig TinyConfig(int64_t num_classes = 4) {
  data::SyntheticImageConfig config;
  config.name = "tiny";
  config.num_classes = num_classes;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 3.5f;
  config.seed = 9;
  return config;
}

data::Dataset TinyTrain(int64_t num_classes = 4) {
  return MakeSyntheticImageData(TinyConfig(num_classes)).train;
}

std::vector<std::unique_ptr<StreamTransform>> Chain(
    const std::vector<std::string>& specs) {
  std::vector<std::unique_ptr<StreamTransform>> transforms;
  for (const std::string& spec : specs) {
    transforms.push_back(
        std::move(StreamRegistry::Global().Create(spec)).ValueOrDie());
  }
  return transforms;
}

std::string TestDir(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// A drift probe that must never run (count triggers, pre-min drift gates).
double ForbiddenProbe() {
  ADD_FAILURE() << "drift probe invoked by a trigger that must not need it";
  return 0.0;
}

TEST(StreamTransforms, RegistryHasBuiltins) {
  std::vector<std::string> names = StreamRegistry::Global().Names();
  EXPECT_TRUE(StreamRegistry::Global().Contains("imbalance"));
  EXPECT_TRUE(StreamRegistry::Global().Contains("label_noise"));
  EXPECT_TRUE(StreamRegistry::Global().Contains("corrupt"));
  EXPECT_GE(names.size(), 3u);
}

TEST(StreamTransforms, UnknownNameListsRegistered) {
  auto result = StreamRegistry::Global().Create("bogus:x=1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("imbalance"), std::string::npos);
  EXPECT_NE(result.status().message().find("label_noise"), std::string::npos);
}

TEST(StreamTransforms, ParameterValidation) {
  EXPECT_FALSE(StreamRegistry::Global().Create("label_noise:p=1.5").ok());
  EXPECT_FALSE(StreamRegistry::Global().Create("imbalance:alpha=-1").ok());
  EXPECT_FALSE(StreamRegistry::Global().Create("corrupt:burst=0").ok());
  // Unknown parameters fail via SpecParams::Finish.
  EXPECT_FALSE(StreamRegistry::Global().Create("imbalance:beta=1").ok());
  EXPECT_TRUE(StreamRegistry::Global().Create("imbalance:alpha=2").ok());
}

TEST(StreamSourceTest, DeterministicUnderFixedSeed) {
  StreamSource a(TinyTrain(),
                 Chain({"imbalance:alpha=1.0", "label_noise:p=0.3",
                        "corrupt:p=0.2,strength=0.5"}),
                 /*seed=*/42);
  StreamSource b(TinyTrain(),
                 Chain({"imbalance:alpha=1.0", "label_noise:p=0.3",
                        "corrupt:p=0.2,strength=0.5"}),
                 /*seed=*/42);
  std::vector<StreamSample> batch_a = a.NextBatch(64);
  std::vector<StreamSample> batch_b = b.NextBatch(64);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i].source_index, batch_b[i].source_index);
    EXPECT_EQ(batch_a[i].label, batch_b[i].label);
    EXPECT_EQ(batch_a[i].observed_label, batch_b[i].observed_label);
    EXPECT_EQ(batch_a[i].features, batch_b[i].features);
  }
}

TEST(StreamSourceTest, LabelNoiseRateMatchesP) {
  const double p = 0.3;
  StreamSource source(TinyTrain(), Chain({"label_noise:p=0.3"}), /*seed=*/7);
  const int64_t n = 4000;
  std::vector<StreamSample> batch = source.NextBatch(n);
  int64_t flipped = 0;
  for (const StreamSample& sample : batch) {
    if (sample.observed_label != sample.label) {
      ++flipped;
      // A flip always lands on a *different* valid class.
      EXPECT_GE(sample.observed_label, 0);
      EXPECT_LT(sample.observed_label, 4);
    }
  }
  double rate = static_cast<double>(flipped) / static_cast<double>(n);
  // Binomial stddev at n=4000 is ~0.007; 0.04 is a > 5-sigma tolerance.
  EXPECT_NEAR(rate, p, 0.04);
}

TEST(StreamSourceTest, ImbalanceHistogramMatchesPowerLaw) {
  const double alpha = 1.0;
  const int64_t num_classes = 4;
  StreamSource source(TinyTrain(num_classes), Chain({"imbalance:alpha=1.0"}),
                      /*seed=*/11);
  const int64_t n = 8000;
  std::vector<StreamSample> batch = source.NextBatch(n);
  std::vector<int64_t> histogram(num_classes, 0);
  for (const StreamSample& sample : batch) ++histogram[sample.label];
  double norm = 0.0;
  for (int64_t c = 0; c < num_classes; ++c) {
    norm += std::pow(static_cast<double>(c + 1), -alpha);
  }
  for (int64_t c = 0; c < num_classes; ++c) {
    double expected = std::pow(static_cast<double>(c + 1), -alpha) / norm;
    double observed =
        static_cast<double>(histogram[c]) / static_cast<double>(n);
    EXPECT_NEAR(observed, expected, 0.03)
        << "class " << c << " frequency off the power law";
  }
  // The head class dominates the tail.
  EXPECT_GT(histogram[0], histogram[num_classes - 1] * 2);
}

TEST(StreamSourceTest, SerializeRoundTripContinuesIdentically) {
  auto chain_specs = std::vector<std::string>{
      "imbalance:alpha=1.5", "label_noise:p=0.2",
      "corrupt:p=1.0,burst=3,strength=0.4"};
  StreamSource a(TinyTrain(), Chain(chain_specs), /*seed=*/13);
  a.NextBatch(37);  // p=1 guarantees a burst is open mid-stream

  io::BufferWriter writer;
  a.Serialize(&writer);
  StreamSource b(TinyTrain(), Chain(chain_specs), /*seed=*/999);
  io::BufferReader reader(writer.bytes());
  ASSERT_TRUE(b.Deserialize(&reader).ok());
  EXPECT_EQ(b.emitted(), 37);

  std::vector<StreamSample> next_a = a.NextBatch(20);
  std::vector<StreamSample> next_b = b.NextBatch(20);
  for (size_t i = 0; i < next_a.size(); ++i) {
    EXPECT_EQ(next_a[i].source_index, next_b[i].source_index);
    EXPECT_EQ(next_a[i].observed_label, next_b[i].observed_label);
    EXPECT_EQ(next_a[i].features, next_b[i].features);
  }
}

TEST(StreamSourceTest, DeserializeRejectsMismatchedChain) {
  StreamSource a(TinyTrain(), Chain({"label_noise:p=0.2"}), /*seed=*/1);
  io::BufferWriter writer;
  a.Serialize(&writer);
  // Different stage count.
  StreamSource b(TinyTrain(), Chain({}), /*seed=*/1);
  io::BufferReader reader_b(writer.bytes());
  EXPECT_FALSE(b.Deserialize(&reader_b).ok());
  // Same count, different stage name.
  StreamSource c(TinyTrain(), Chain({"imbalance:alpha=1"}), /*seed=*/1);
  io::BufferReader reader_c(writer.bytes());
  util::Status status = c.Deserialize(&reader_c);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("label_noise"), std::string::npos);
}

TEST(StreamSpecTest, ParsesPresetAndStages) {
  auto result = stream::ParseStreamSpec(
      "SynthCifar10|imbalance:alpha=1.5|label_noise:p=0.2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result).preset, "SynthCifar10");
  ASSERT_EQ((*result).stages.size(), 2u);
  EXPECT_EQ((*result).stages[0], "imbalance:alpha=1.5");
}

TEST(StreamSpecTest, RejectsUnknownStageListingRegistered) {
  auto result = stream::ParseStreamSpec("SynthCifar10|warp:x=1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("imbalance"), std::string::npos);
  EXPECT_NE(result.status().message().find("corrupt"), std::string::npos);
}

TEST(StreamSpecTest, RejectsUnknownPresetListingPresets) {
  auto result = stream::ParseStreamSpec("Cifar10|imbalance:alpha=1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("SynthCifar10"), std::string::npos);
  EXPECT_FALSE(stream::ParseStreamSpec("").ok());
  EXPECT_FALSE(stream::ParseStreamSpec("SynthCifar10||corrupt").ok());
}

TEST(TriggerTest, RegistryAndValidation) {
  EXPECT_TRUE(TriggerRegistry::Global().Contains("count"));
  EXPECT_TRUE(TriggerRegistry::Global().Contains("drift"));
  auto unknown = TriggerRegistry::Global().Create("cadence");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("count"), std::string::npos);
  EXPECT_FALSE(TriggerRegistry::Global().Create("count:n=0").ok());
  EXPECT_FALSE(TriggerRegistry::Global().Create("drift:threshold=0").ok());
  EXPECT_FALSE(
      TriggerRegistry::Global().Create("drift:min=100,max=50").ok());
}

TEST(TriggerTest, CountFiresOnCadenceWithoutProbing) {
  auto trigger =
      std::move(TriggerRegistry::Global().Create("count:n=32")).ValueOrDie();
  TriggerContext context;
  context.samples_in_cycle = 31;
  EXPECT_EQ(trigger->ShouldFire(context, ForbiddenProbe), "");
  context.samples_in_cycle = 32;
  EXPECT_EQ(trigger->ShouldFire(context, ForbiddenProbe), "count");
}

TEST(TriggerTest, DriftGatesProbesAndFires) {
  auto trigger = std::move(TriggerRegistry::Global().Create(
                               "drift:threshold=0.5,min=16,max=64,check=2"))
                     .ValueOrDie();
  TriggerContext context;
  // Below min: never probes.
  context.samples_in_cycle = 8;
  context.micro_batches_in_cycle = 2;
  EXPECT_EQ(trigger->ShouldFire(context, ForbiddenProbe), "");
  // Past min but off the check cadence: never probes.
  context.samples_in_cycle = 24;
  context.micro_batches_in_cycle = 3;
  EXPECT_EQ(trigger->ShouldFire(context, ForbiddenProbe), "");
  // On cadence, cold start (negative probe): keeps streaming.
  context.micro_batches_in_cycle = 4;
  EXPECT_EQ(trigger->ShouldFire(context, [] { return -1.0; }), "");
  // On cadence, below threshold: keeps streaming.
  EXPECT_EQ(trigger->ShouldFire(context, [] { return 0.4; }), "");
  // On cadence, at threshold: fires with cause "drift".
  EXPECT_EQ(trigger->ShouldFire(context, [] { return 0.5; }), "drift");
  // At the ceiling: forces a fire without probing.
  context.samples_in_cycle = 64;
  EXPECT_EQ(trigger->ShouldFire(context, ForbiddenProbe), "max");
}

cl::StrategyContext TinyContext(uint64_t seed = 0) {
  cl::StrategyContext context;
  // SynthCifar10 geometry is {3, 8, 8} = 192 input features.
  context.encoder.mlp_dims = {192, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.batch_size = 8;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = seed;
  return context;
}

struct StreamFixture {
  std::unique_ptr<cl::ContinualStrategy> strategy;
  const core::Edsr* edsr = nullptr;
  stream::StreamBundle bundle;
  std::unique_ptr<stream::CycleTrigger> trigger;
  data::Task id_task;
};

StreamFixture MakeFixture(const std::string& trigger_spec) {
  StreamFixture fixture;
  fixture.strategy = cl::MakeStrategy("edsr", TinyContext());
  fixture.edsr = dynamic_cast<const core::Edsr*>(fixture.strategy.get());
  fixture.bundle = std::move(stream::MakeStreamBundle(
                                 "SynthCifar10|imbalance:alpha=1.2|"
                                 "label_noise:p=0.2",
                                 /*seed=*/3))
                       .ValueOrDie();
  fixture.trigger =
      std::move(TriggerRegistry::Global().Create(trigger_spec)).ValueOrDie();
  fixture.id_task.train = fixture.bundle.id_train;
  fixture.id_task.test = fixture.bundle.id_test;
  fixture.id_task.task_id = 0;
  return fixture;
}

stream::StreamRunOptions TinyOptions(const StreamFixture& fixture) {
  stream::StreamRunOptions options;
  options.micro_batch = 8;
  options.total_samples = 48;
  options.id_probe = &fixture.id_task;
  options.memory = &fixture.edsr->memory();
  options.stream_spec = "SynthCifar10|imbalance:alpha=1.2|label_noise:p=0.2";
  options.trigger_spec = "count:n=16";
  return options;
}

void ExpectSameCycles(const stream::StreamRunResult& a,
                      const stream::StreamRunResult& b) {
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  EXPECT_EQ(a.total_samples, b.total_samples);
  for (size_t i = 0; i < a.cycles.size(); ++i) {
    const stream::StreamCycleResult& x = a.cycles[i];
    const stream::StreamCycleResult& y = b.cycles[i];
    EXPECT_EQ(x.cycle, y.cycle);
    EXPECT_EQ(x.cause, y.cause);
    EXPECT_EQ(x.samples, y.samples);
    EXPECT_EQ(x.micro_batches, y.micro_batches);
    EXPECT_EQ(x.total_samples, y.total_samples);
    EXPECT_EQ(x.loss, y.loss);  // bit-identical, not approximately equal
    EXPECT_EQ(x.drift, y.drift);
    EXPECT_EQ(x.buffer_size, y.buffer_size);
    EXPECT_EQ(x.buffer_entropy, y.buffer_entropy);
    EXPECT_EQ(x.id_accuracy, y.id_accuracy);
    EXPECT_EQ(x.ood_accuracy, y.ood_accuracy);
  }
}

TEST(StreamDriverTest, RejectsBadOptions) {
  StreamFixture fixture = MakeFixture("count:n=16");
  stream::StreamRunOptions options = TinyOptions(fixture);
  options.micro_batch = 1;
  EXPECT_FALSE(stream::RunStream(fixture.strategy.get(),
                                 fixture.bundle.source.get(),
                                 fixture.trigger.get(), options)
                   .ok());
  options = TinyOptions(fixture);
  options.id_probe = nullptr;
  EXPECT_FALSE(stream::RunStream(fixture.strategy.get(),
                                 fixture.bundle.source.get(),
                                 fixture.trigger.get(), options)
                   .ok());
}

TEST(StreamDriverTest, CountTriggerDrivesWholeStream) {
  StreamFixture fixture = MakeFixture("count:n=16");
  stream::StreamRunOptions options = TinyOptions(fixture);
  auto result = stream::RunStream(fixture.strategy.get(),
                                  fixture.bundle.source.get(),
                                  fixture.trigger.get(), options);
  ASSERT_TRUE(result.ok());
  const stream::StreamRunResult& run = *result;
  EXPECT_TRUE(run.finished);
  EXPECT_EQ(run.total_samples, 48);
  ASSERT_EQ(run.cycles.size(), 3u);
  for (const stream::StreamCycleResult& cycle : run.cycles) {
    EXPECT_EQ(cycle.cause, "count");
    EXPECT_EQ(cycle.samples, 16);
    EXPECT_EQ(cycle.micro_batches, 2);
    EXPECT_GE(cycle.id_accuracy, 0.0);
    EXPECT_LE(cycle.id_accuracy, 1.0);
    EXPECT_EQ(cycle.ood_accuracy, -1.0);  // no OOD probe configured
    EXPECT_GE(cycle.buffer_entropy, 0.0);
  }
  // The buffer grows cycle over cycle (memory_per_task entries per cycle).
  EXPECT_GT(run.cycles.back().buffer_size, run.cycles.front().buffer_size);
}

TEST(StreamDriverTest, DriftTriggerColdStartsAtMax) {
  StreamFixture fixture =
      MakeFixture("drift:threshold=0.000001,min=8,max=24,check=1");
  stream::StreamRunOptions options = TinyOptions(fixture);
  options.trigger_spec = "drift:threshold=0.000001,min=8,max=24,check=1";
  options.total_samples = 64;
  auto result = stream::RunStream(fixture.strategy.get(),
                                  fixture.bundle.source.get(),
                                  fixture.trigger.get(), options);
  ASSERT_TRUE(result.ok());
  const stream::StreamRunResult& run = *result;
  ASSERT_GE(run.cycles.size(), 2u);
  // Cycle 0 has no buffer anchors — the ceiling carries it.
  EXPECT_EQ(run.cycles[0].cause, "max");
  EXPECT_LT(run.cycles[0].drift, 0.0);
  // Once anchors exist, the (tiny) threshold fires on real drift.
  EXPECT_EQ(run.cycles[1].cause, "drift");
  EXPECT_GT(run.cycles[1].drift, 0.0);
}

TEST(StreamDriverTest, ResumeAfterKillIsBitIdentical) {
  // Straight run.
  StreamFixture straight = MakeFixture("count:n=16");
  stream::StreamRunOptions options = TinyOptions(straight);
  options.checkpoint_directory = TestDir("stream_straight");
  auto full = stream::RunStream(straight.strategy.get(),
                                straight.bundle.source.get(),
                                straight.trigger.get(), options);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ((*full).cycles.size(), 3u);

  // Killed run: stop (still checkpointed) after cycle 0.
  StreamFixture killed = MakeFixture("count:n=16");
  stream::StreamRunOptions killed_options = TinyOptions(killed);
  killed_options.checkpoint_directory = TestDir("stream_killed");
  killed_options.stop_after_cycle = 0;
  auto partial = stream::RunStream(killed.strategy.get(),
                                   killed.bundle.source.get(),
                                   killed.trigger.get(), killed_options);
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE((*partial).finished);
  EXPECT_EQ((*partial).cycles.size(), 1u);

  // Resume into freshly constructed strategy/source/trigger.
  StreamFixture resumed = MakeFixture("count:n=16");
  stream::StreamRunOptions resume_options = TinyOptions(resumed);
  resume_options.checkpoint_directory = TestDir("stream_killed");
  stream::StreamRunResult resumed_result;
  ASSERT_TRUE(stream::ResumeStream(resumed.strategy.get(),
                                   resumed.bundle.source.get(),
                                   resumed.trigger.get(), resume_options,
                                   &resumed_result)
                  .ok());
  EXPECT_TRUE(resumed_result.finished);
  ExpectSameCycles(*full, resumed_result);
}

TEST(StreamDriverTest, ResumeRejectsSpecMismatch) {
  StreamFixture fixture = MakeFixture("count:n=16");
  stream::StreamRunOptions options = TinyOptions(fixture);
  options.checkpoint_directory = TestDir("stream_mismatch");
  options.stop_after_cycle = 0;
  ASSERT_TRUE(stream::RunStream(fixture.strategy.get(),
                                fixture.bundle.source.get(),
                                fixture.trigger.get(), options)
                  .ok());

  StreamFixture other = MakeFixture("count:n=16");
  stream::StreamRunOptions other_options = TinyOptions(other);
  other_options.checkpoint_directory = TestDir("stream_mismatch");
  other_options.trigger_spec = "count:n=32";  // not what was checkpointed
  stream::StreamRunResult result;
  util::Status status = stream::ResumeStream(other.strategy.get(),
                                             other.bundle.source.get(),
                                             other.trigger.get(),
                                             other_options, &result);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count:n=32"), std::string::npos);
}

TEST(StreamDriverTest, ResumeFailsCleanlyOnMissingCheckpoint) {
  StreamFixture fixture = MakeFixture("count:n=16");
  stream::StreamRunOptions options = TinyOptions(fixture);
  options.checkpoint_directory = TestDir("stream_nowhere");
  stream::StreamRunResult result;
  EXPECT_FALSE(stream::ResumeStream(fixture.strategy.get(),
                                    fixture.bundle.source.get(),
                                    fixture.trigger.get(), options, &result)
                   .ok());
}

TEST(StreamDriverTest, BufferCompositionEntropyBounds) {
  StreamFixture fixture = MakeFixture("count:n=16");
  // Empty buffer: zero entropy.
  EXPECT_EQ(stream::BufferCompositionEntropy(&fixture.edsr->memory()), 0.0);
  EXPECT_EQ(stream::BufferCompositionEntropy(nullptr), 0.0);
  stream::StreamRunOptions options = TinyOptions(fixture);
  ASSERT_TRUE(stream::RunStream(fixture.strategy.get(),
                                fixture.bundle.source.get(),
                                fixture.trigger.get(), options)
                  .ok());
  double entropy = stream::BufferCompositionEntropy(&fixture.edsr->memory());
  EXPECT_GE(entropy, 0.0);
  // Entropy over the preset's 20 classes is bounded by ln(20).
  EXPECT_LE(entropy, std::log(20.0) + 1e-9);
}

}  // namespace
}  // namespace edsr
