// Tests for data selection methods (§III-A and the Table V baselines).
#include "src/cl/selection.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/linalg/eigen.h"

namespace edsr {
namespace {

using cl::DataSelector;
using cl::HighEntropySelector;
using cl::SelectionContext;
using eval::RepresentationMatrix;

RepresentationMatrix MakeReps(std::vector<float> values, int64_t n,
                              int64_t d) {
  RepresentationMatrix m;
  m.values = std::move(values);
  m.n = n;
  m.d = d;
  return m;
}

// Two tight clusters plus two far outlier-ish high-norm points.
RepresentationMatrix ClusteredReps() {
  std::vector<float> values;
  util::Rng rng(0);
  auto push = [&](float x, float y) {
    values.push_back(x);
    values.push_back(y);
  };
  for (int i = 0; i < 10; ++i) push(1.0f + rng.Normal(0, 0.05f), 0.0f);
  for (int i = 0; i < 10; ++i) push(0.0f, 1.0f + rng.Normal(0, 0.05f));
  push(5.0f, 0.0f);   // index 20
  push(0.0f, 5.0f);   // index 21
  return MakeReps(std::move(values), 22, 2);
}

TEST(RandomSelector, RespectsBudgetAndDistinct) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}};
  cl::RandomSelector selector;
  util::Rng rng(1);
  std::vector<int64_t> picks = selector.Select(context, 5, &rng);
  EXPECT_EQ(picks.size(), 5u);
  std::set<int64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RandomSelector, BudgetLargerThanDataIsClamped) {
  RepresentationMatrix reps = MakeReps({1, 2, 3, 4}, 2, 2);
  SelectionContext context{&reps, {}};
  cl::RandomSelector selector;
  util::Rng rng(2);
  EXPECT_EQ(selector.Select(context, 10, &rng).size(), 2u);
}

TEST(DistantSelector, PicksSpreadPoints) {
  // Three tight groups: a budget of 3 should take one from each.
  std::vector<float> values;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 8; ++i) {
      values.push_back(static_cast<float>(g * 10));
      values.push_back(static_cast<float>(i) * 0.01f);
    }
  }
  RepresentationMatrix reps = MakeReps(std::move(values), 24, 2);
  SelectionContext context{&reps, {}};
  cl::DistantSelector selector;
  util::Rng rng(3);
  std::vector<int64_t> picks = selector.Select(context, 3, &rng);
  std::set<int64_t> groups;
  for (int64_t p : picks) groups.insert(p / 8);
  EXPECT_EQ(groups.size(), 3u) << "distant selection must span the clusters";
}

TEST(KMeansSelector, OnePickPerCluster) {
  std::vector<float> values;
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 6; ++i) {
      values.push_back(static_cast<float>(g * 20));
      values.push_back(static_cast<float>(i) * 0.02f);
    }
  }
  RepresentationMatrix reps = MakeReps(std::move(values), 24, 2);
  SelectionContext context{&reps, {}};
  cl::KMeansSelector selector;
  util::Rng rng(4);
  std::vector<int64_t> picks = selector.Select(context, 4, &rng);
  EXPECT_EQ(picks.size(), 4u);
  std::set<int64_t> groups;
  for (int64_t p : picks) groups.insert(p / 6);
  EXPECT_EQ(groups.size(), 4u);
  std::set<int64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 4u) << "picks must be distinct samples";
}

TEST(MinVarSelector, PrefersLowVarianceSamples) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}};
  context.augmentation_variance.assign(22, 1.0);
  // Mark a handful of samples as very stable under augmentation.
  context.augmentation_variance[3] = 0.01;
  context.augmentation_variance[13] = 0.01;
  cl::MinVarSelector selector(/*num_clusters=*/2);
  util::Rng rng(5);
  std::vector<int64_t> picks = selector.Select(context, 2, &rng);
  std::set<int64_t> set(picks.begin(), picks.end());
  EXPECT_TRUE(set.count(3) == 1 || set.count(13) == 1)
      << "low-variance samples should be kept first";
}

TEST(MinVarSelector, RequiresVarianceScores) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}};
  cl::MinVarSelector selector;
  EXPECT_TRUE(selector.needs_augmentation_variance());
  util::Rng rng(6);
  EXPECT_DEATH(selector.Select(context, 2, &rng), "variance");
}

TEST(HighEntropyNorm, SelectsLargestNorms) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}};
  HighEntropySelector selector(HighEntropySelector::Mode::kNorm);
  util::Rng rng(7);
  std::vector<int64_t> picks = selector.Select(context, 2, &rng);
  std::set<int64_t> set(picks.begin(), picks.end());
  EXPECT_TRUE(set.count(20) == 1 && set.count(21) == 1)
      << "norm mode must take the two highest-norm points";
}

TEST(HighEntropyNorm, ExactlyMaximizesTrace) {
  // Property: among all budget-sized subsets, the norm mode attains the
  // maximal Tr(Cov(M)) (brute force over a small instance).
  util::Rng rng(8);
  int64_t n = 9, d = 3, budget = 3;
  std::vector<float> values(n * d);
  for (float& v : values) v = rng.Normal();
  RepresentationMatrix reps = MakeReps(values, n, d);
  SelectionContext context{&reps, {}};
  HighEntropySelector selector(HighEntropySelector::Mode::kNorm);
  std::vector<int64_t> picks = selector.Select(context, budget, &rng);

  auto subset_trace = [&](const std::vector<int64_t>& subset) {
    std::vector<float> rows;
    for (int64_t i : subset) {
      rows.insert(rows.end(), reps.Row(i), reps.Row(i) + d);
    }
    return linalg::Trace(
        linalg::CovarianceGram(rows, static_cast<int64_t>(subset.size()), d),
        d);
  };
  double chosen = subset_trace(picks);
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a + 1; b < n; ++b) {
      for (int64_t c = b + 1; c < n; ++c) {
        EXPECT_LE(subset_trace({a, b, c}), chosen + 1e-4);
      }
    }
  }
}

TEST(HighEntropyPca, SelectionIsDeterministic) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}};
  HighEntropySelector selector(HighEntropySelector::Mode::kPcaLeverage, 2);
  util::Rng rng_a(9), rng_b(10);
  EXPECT_EQ(selector.Select(context, 4, &rng_a),
            selector.Select(context, 4, &rng_b));
}

TEST(HighEntropyPca, PrefersPrincipalSubspaceOverNoiseDirections) {
  // Data spread along dim 0 (principal); one sample has a huge component in
  // dim 2, which carries almost no variance elsewhere. With 1 component,
  // PCA-leverage should keep extreme principal-direction samples and not be
  // seduced by the noise-direction outlier relative to norm scoring.
  std::vector<float> values = {
      4, 0, 0,
      -4, 0, 0,
      3.5f, 0, 0,
      -3.5f, 0, 0,
      0.1f, 0, 3.9f,  // big norm, but off-principal (index 4)
      0.2f, 0, 0,
      0.1f, 0, 0,
  };
  RepresentationMatrix reps = MakeReps(values, 7, 3);
  SelectionContext context{&reps, {}};
  HighEntropySelector pca(HighEntropySelector::Mode::kPcaLeverage, 1);
  util::Rng rng(11);
  std::vector<int64_t> picks = pca.Select(context, 4, &rng);
  std::set<int64_t> set(picks.begin(), picks.end());
  EXPECT_EQ(set.count(4), 0u)
      << "with one principal component the noise-direction point loses";
  EXPECT_EQ(set, (std::set<int64_t>{0, 1, 2, 3}));
}

TEST(HighEntropyLogDet, CoversDirectionsNotJustNorms) {
  // Greedy log-det favors *diverse* directions: given two colinear huge
  // points and one orthogonal medium point, budget 2 must include the
  // orthogonal one (norm mode would take the two colinear giants).
  std::vector<float> values = {
      10, 0,
      9.5f, 0,
      0, 2,
  };
  RepresentationMatrix reps = MakeReps(values, 3, 2);
  SelectionContext context{&reps, {}};
  HighEntropySelector logdet(HighEntropySelector::Mode::kGreedyLogDet);
  util::Rng rng(12);
  std::vector<int64_t> picks = logdet.Select(context, 2, &rng);
  std::set<int64_t> set(picks.begin(), picks.end());
  EXPECT_EQ(set.count(2), 1u);
  HighEntropySelector norm(HighEntropySelector::Mode::kNorm);
  std::vector<int64_t> norm_picks = norm.Select(context, 2, &rng);
  std::set<int64_t> norm_set(norm_picks.begin(), norm_picks.end());
  EXPECT_EQ(norm_set, (std::set<int64_t>{0, 1}));
}

// ---- Registry + shared-contract property suite ----------------------------

// A context carrying every optional signal, so the suite below can drive any
// registered selector regardless of what it declares it needs.
SelectionContext FullContext(const RepresentationMatrix& reps,
                             const RepresentationMatrix& grads) {
  SelectionContext context;
  context.representations = &reps;
  context.augmentation_variance.resize(reps.n);
  for (int64_t i = 0; i < reps.n; ++i) {
    context.augmentation_variance[i] = 0.1 + 0.01 * static_cast<double>(i);
  }
  context.gradient_features = &grads;
  return context;
}

std::unique_ptr<DataSelector> MustCreate(const std::string& spec) {
  util::Result<std::unique_ptr<DataSelector>> selector =
      cl::SelectorRegistry::Global().Create(spec);
  EXPECT_TRUE(selector.ok()) << spec << ": " << selector.status().message();
  return std::move(selector).ValueOrDie();
}

TEST(SelectorRegistry, EveryBuiltinConstructsByName) {
  std::vector<std::string> names = cl::SelectorRegistry::Global().Names();
  ASSERT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    EXPECT_TRUE(cl::SelectorRegistry::Global().Contains(name));
    EXPECT_EQ(MustCreate(name)->name(), name);
  }
}

TEST(SelectorRegistry, UnknownNameListsRegisteredEntries) {
  util::Result<std::unique_ptr<DataSelector>> result =
      cl::SelectorRegistry::Global().Create("no-such-selector");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no-such-selector"),
            std::string::npos);
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    EXPECT_NE(result.status().message().find(name), std::string::npos)
        << "error must list " << name;
  }
}

TEST(SelectorRegistry, ParameterizedSpecsConstruct) {
  EXPECT_EQ(MustCreate("kmeans:iters=3")->name(), "kmeans");
  EXPECT_EQ(MustCreate("high-entropy:mode=logdet,components=4")->name(),
            "high-entropy");
  EXPECT_EQ(MustCreate("gradient-affinity:tau=0.5,kappa=0.1")->name(),
            "gradient-affinity");
}

TEST(SelectorRegistry, RejectsUnknownParameter) {
  util::Result<std::unique_ptr<DataSelector>> result =
      cl::SelectorRegistry::Global().Create("random:foo=1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown parameter"),
            std::string::npos);
}

TEST(SelectorRegistry, RejectsMalformedSpecs) {
  EXPECT_FALSE(cl::SelectorRegistry::Global().Create("").ok());
  EXPECT_FALSE(cl::SelectorRegistry::Global().Create("kmeans:iters").ok());
  EXPECT_FALSE(cl::SelectorRegistry::Global().Create("kmeans:iters=abc").ok());
  EXPECT_FALSE(
      cl::SelectorRegistry::Global().Create("high-entropy:mode=bogus").ok());
}

TEST(SelectorRegistry, PropertyExactUniqueInRangeForEveryBudget) {
  RepresentationMatrix reps = ClusteredReps();
  RepresentationMatrix grads = ClusteredReps();
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    std::unique_ptr<DataSelector> selector = MustCreate(name);
    SelectionContext context = FullContext(reps, grads);
    for (int64_t budget : {int64_t{0}, int64_t{5}, reps.n, int64_t{100}}) {
      util::Rng rng(17);
      std::vector<int64_t> picks =
          cl::RunSelection(selector.get(), context, budget, &rng);
      int64_t expected = std::min<int64_t>(std::max<int64_t>(budget, 0),
                                           reps.n);
      EXPECT_EQ(static_cast<int64_t>(picks.size()), expected)
          << name << " at budget " << budget;
      std::set<int64_t> unique(picks.begin(), picks.end());
      EXPECT_EQ(unique.size(), picks.size()) << name << " returned duplicates";
      for (int64_t pick : picks) {
        EXPECT_GE(pick, 0) << name;
        EXPECT_LT(pick, reps.n) << name;
      }
    }
  }
}

TEST(SelectorRegistry, PropertyDeterministicUnderFixedSeed) {
  RepresentationMatrix reps = ClusteredReps();
  RepresentationMatrix grads = ClusteredReps();
  for (const std::string& name : cl::SelectorRegistry::Global().Names()) {
    std::unique_ptr<DataSelector> a = MustCreate(name);
    std::unique_ptr<DataSelector> b = MustCreate(name);
    SelectionContext context = FullContext(reps, grads);
    util::Rng rng_a(21), rng_b(21);
    EXPECT_EQ(cl::RunSelection(a.get(), context, 6, &rng_a),
              cl::RunSelection(b.get(), context, 6, &rng_b))
        << name << " must be deterministic under a fixed seed";
  }
}

// ---- RunSelection edge-case contract --------------------------------------

class StubSelector : public DataSelector {
 public:
  explicit StubSelector(std::vector<int64_t> raw) : raw_(std::move(raw)) {}
  std::vector<int64_t> Select(const SelectionContext&, int64_t,
                              util::Rng*) override {
    return raw_;
  }
  std::string name() const override { return "stub"; }

 private:
  std::vector<int64_t> raw_;
};

TEST(RunSelection, DropsDuplicatesAndPadsShortReturns) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}, nullptr};
  StubSelector stub({2, 2, 5});
  util::Rng rng(30);
  EXPECT_EQ(cl::RunSelection(&stub, context, 4, &rng),
            (std::vector<int64_t>{2, 5, 0, 1}));
}

TEST(RunSelection, BudgetCoveringDataSkipsTheSelector) {
  RepresentationMatrix reps = MakeReps({1, 2, 3, 4}, 2, 2);
  SelectionContext context{&reps, {}, nullptr};
  // Out-of-range stub: would abort if RunSelection consulted it.
  StubSelector stub({-1});
  util::Rng rng(31);
  EXPECT_EQ(cl::RunSelection(&stub, context, 2, &rng),
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(cl::RunSelection(&stub, context, 9, &rng),
            (std::vector<int64_t>{0, 1}));
}

TEST(RunSelection, NonPositiveBudgetIsEmpty) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}, nullptr};
  StubSelector stub({0});
  util::Rng rng(32);
  EXPECT_TRUE(cl::RunSelection(&stub, context, 0, &rng).empty());
  EXPECT_TRUE(cl::RunSelection(&stub, context, -3, &rng).empty());
}

TEST(RunSelection, OutOfRangePickAborts) {
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}, nullptr};
  StubSelector stub({99});
  util::Rng rng(33);
  EXPECT_DEATH(cl::RunSelection(&stub, context, 2, &rng), "out-of-range");
}

// ---- Stateful-selector checkpointing --------------------------------------

TEST(GradientAffinitySelector, StateRoundTripsThroughSerialize) {
  RepresentationMatrix reps = ClusteredReps();
  RepresentationMatrix grads = ClusteredReps();
  SelectionContext context = FullContext(reps, grads);

  cl::GradientAffinitySelector original;
  util::Rng rng(40);
  cl::RunSelection(&original, context, 5, &rng);
  ASSERT_GT(original.reference_count(), 0);

  io::BufferWriter out;
  cl::SaveSelectorState(original, &out);
  cl::GradientAffinitySelector restored;
  io::BufferReader in(out.bytes());
  ASSERT_TRUE(cl::LoadSelectorState(&restored, &in).ok());
  ASSERT_TRUE(in.ExpectEnd().ok());
  EXPECT_EQ(restored.reference_count(), original.reference_count());

  // The restored selector must continue exactly like the original.
  util::Rng rng_a(41), rng_b(41);
  EXPECT_EQ(cl::RunSelection(&original, context, 5, &rng_a),
            cl::RunSelection(&restored, context, 5, &rng_b));
}

TEST(SelectorState, NameMismatchIsRejected) {
  cl::RandomSelector random;
  io::BufferWriter out;
  cl::SaveSelectorState(random, &out);
  cl::KMeansSelector kmeans;
  io::BufferReader in(out.bytes());
  util::Status status = cl::LoadSelectorState(&kmeans, &in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("random"), std::string::npos);
  EXPECT_NE(status.message().find("kmeans"), std::string::npos);
}

// ---- New selectors --------------------------------------------------------

TEST(GradientAffinitySelector, RequiresGradientFeatures) {
  cl::GradientAffinitySelector selector;
  EXPECT_TRUE(selector.needs_gradient_features());
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}, nullptr};
  util::Rng rng(50);
  EXPECT_DEATH(selector.Select(context, 2, &rng), "gradient");
}

TEST(ComplementarySelector, SpansClustersInsteadOfStackingOne) {
  // Facility-location coverage: with two tight clusters and budget 2, the
  // picks must come from different clusters.
  RepresentationMatrix reps = ClusteredReps();
  SelectionContext context{&reps, {}, nullptr};
  cl::ComplementarySelector selector;
  util::Rng rng(51);
  std::vector<int64_t> picks = selector.Select(context, 2, &rng);
  ASSERT_EQ(picks.size(), 2u);
  auto cluster = [](int64_t i) { return (i == 20 || i < 10) ? 0 : 1; };
  EXPECT_NE(cluster(picks[0]), cluster(picks[1]))
      << "complementary picks must cover both clusters";
}

}  // namespace
}  // namespace edsr
