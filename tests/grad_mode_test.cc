// Tests for the GradMode layer: NoGradGuard semantics, graph-free MakeOp,
// storage aliasing, and the autograd-node counter.
#include "src/tensor/grad_mode.h"

#include <gtest/gtest.h>

#include "src/tensor/ops.h"

namespace edsr {
namespace {

using tensor::AutogradNodesCreated;
using tensor::EnableGradGuard;
using tensor::GradMode;
using tensor::NoGradGuard;
using tensor::ResetAutogradNodeCount;
using tensor::Tensor;

TEST(GradMode, EnabledByDefaultAndGuardRestores) {
  EXPECT_TRUE(GradMode::IsEnabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::IsEnabled());
    {
      NoGradGuard nested;
      EXPECT_FALSE(GradMode::IsEnabled());
    }
    EXPECT_FALSE(GradMode::IsEnabled());  // nested exit keeps outer state
    {
      EnableGradGuard force_on;
      EXPECT_TRUE(GradMode::IsEnabled());
    }
    EXPECT_FALSE(GradMode::IsEnabled());
  }
  EXPECT_TRUE(GradMode::IsEnabled());
}

TEST(GradMode, OpWithNoGradParentsBuildsNoGraph) {
  // Satellite regression: parents that don't require grad must yield an
  // output with no backward_fn, no parent edges, and requires_grad=false —
  // even with grad mode on.
  Tensor a = Tensor::FromVector({1, 2, 3}, {3}, /*requires_grad=*/false);
  Tensor b = Tensor::FromVector({4, 5, 6}, {3}, /*requires_grad=*/false);
  Tensor c = a * b + a;
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(c.impl()->backward_fn));
}

TEST(GradMode, NoGradGuardSuppressesGraphForGradParents) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3}, /*requires_grad=*/true);
  NoGradGuard guard;
  Tensor c = tensor::Square(a);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(c.impl()->backward_fn));
  EXPECT_TRUE(c.impl()->grad.empty());
}

TEST(GradMode, GradFlowsNormallyAfterGuardExits) {
  Tensor a = Tensor::FromVector({2, 3}, {2}, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    tensor::Square(a);  // graph-free throwaway forward
  }
  Tensor loss = tensor::SumAll(tensor::Square(a));
  EXPECT_TRUE(loss.requires_grad());
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 6.0f);
}

TEST(GradMode, NodeCounterTracksGraphedOpsOnly) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, /*requires_grad=*/true);
  ResetAutogradNodeCount();
  EXPECT_EQ(AutogradNodesCreated(), 0);
  Tensor b = tensor::Square(a);   // graphed
  Tensor c = b + a;               // graphed
  EXPECT_EQ(AutogradNodesCreated(), 2);
  {
    NoGradGuard guard;
    tensor::Square(a);
    tensor::SumAll(c);
  }
  EXPECT_EQ(AutogradNodesCreated(), 2);  // guard suppressed both
  Tensor no_grad_leaf = Tensor::FromVector({1, 2}, {2});
  tensor::Square(no_grad_leaf);
  EXPECT_EQ(AutogradNodesCreated(), 2);  // no-grad parents don't count
}

TEST(Storage, DetachAliasesCloneCopies) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_EQ(d.storage().get(), a.storage().get());  // zero-copy alias
  EXPECT_FALSE(d.requires_grad());

  Tensor c = a.Clone();
  EXPECT_NE(c.storage().get(), a.storage().get());  // independent buffer
  c.mutable_data()[0] = 42.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 1.0f);
}

TEST(Storage, ReshapeAliasesStorage) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3},
                                /*requires_grad=*/true);
  Tensor r = tensor::Reshape(a, {3, 2});
  EXPECT_EQ(r.storage().get(), a.storage().get());
  // Gradients still flow through the aliased view.
  Tensor loss = tensor::SumAll(tensor::Square(r));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[2], 6.0f);
}

TEST(Storage, DetachSeesNoGraph) {
  Tensor a = Tensor::FromVector({1, 2}, {2}, /*requires_grad=*/true);
  Tensor b = tensor::Square(a);
  Tensor d = b.Detach();
  EXPECT_TRUE(d.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(d.impl()->backward_fn));
  // Using the detached value as a constant blocks grad flow into `a` from
  // that branch.
  Tensor loss = tensor::SumAll(a * d);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);  // d[0] == 1, no chain through Square
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
}

}  // namespace
}  // namespace edsr
