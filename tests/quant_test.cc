// Tests for the int8 quantized serve path: depth padding, quantized-vs-float
// encoder tolerance (MLP, heads, conv), and serve kNN accuracy parity when a
// snapshot is installed with int8_serving.
#include "src/nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/eval/knn.h"
#include "src/serve/snapshot.h"
#include "src/ssl/encoder.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

using nn::quant::QuantizedEncoder;

// Documented accuracy contract (quant.h): quantized representations stay
// within this fraction of the float representation's max magnitude. Int8
// carries ~0.4% error per layer; 10% headroom across a 5-layer stack still
// fails loudly on any real defect (a wrong BN fold or layer mapping is an
// O(1) relative error).
constexpr float kRelTolerance = 0.1f;

std::vector<float> RandomRows(int64_t n, int64_t d, util::Rng* rng) {
  std::vector<float> v(n * d);
  for (float& x : v) x = rng->Uniform(-1.0f, 1.0f);
  return v;
}

// Builds an encoder, runs a few training-mode batches so the BatchNorm
// running statistics move off their init (exercising the eval-mode fold),
// then freezes it the way serve snapshots do.
std::unique_ptr<ssl::Encoder> FrozenEncoder(const ssl::EncoderConfig& config,
                                            uint64_t seed) {
  util::Rng rng(seed);
  auto encoder = ssl::Encoder::Make(config, &rng);
  {
    tensor::NoGradGuard no_grad;
    encoder->SetTraining(true);
    for (int step = 0; step < 3; ++step) {
      std::vector<float> batch = RandomRows(16, encoder->input_dim(), &rng);
      encoder->Forward(
          tensor::Tensor::FromVector(batch, {16, encoder->input_dim()}));
    }
  }
  encoder->SetTraining(false);
  encoder->SetRequiresGrad(false);
  return encoder;
}

// Max-abs error between quantized and float forward, normalized by the
// float output's max magnitude.
float RelativeError(ssl::Encoder* encoder, const QuantizedEncoder& quantized,
                    int64_t n, util::Rng* rng) {
  std::vector<float> input = RandomRows(n, encoder->input_dim(), rng);
  tensor::NoGradGuard no_grad;
  tensor::Tensor expected = encoder->Forward(
      tensor::Tensor::FromVector(input, {n, encoder->input_dim()}));
  std::vector<float> actual(n * encoder->representation_dim());
  quantized.Forward(input.data(), n, actual.data());
  float max_abs = 1e-6f, max_err = 0.0f;
  for (size_t i = 0; i < actual.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(expected.data()[i]));
    max_err = std::max(max_err, std::abs(actual[i] - expected.data()[i]));
  }
  return max_err / max_abs;
}

TEST(Quant, PadDepthRoundsUpToAlignment) {
  EXPECT_EQ(nn::quant::PadDepth(1), 32);
  EXPECT_EQ(nn::quant::PadDepth(32), 32);
  EXPECT_EQ(nn::quant::PadDepth(33), 64);
  EXPECT_EQ(nn::quant::PadDepth(192), 192);
}

TEST(Quant, MlpEncoderWithinTolerance) {
  ssl::EncoderConfig config;
  config.mlp_dims = {24, 48, 32};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  auto encoder = FrozenEncoder(config, 11);
  QuantizedEncoder quantized(*encoder);
  EXPECT_EQ(quantized.input_dim(), encoder->input_dim());
  EXPECT_EQ(quantized.representation_dim(), encoder->representation_dim());
  util::Rng rng(12);
  EXPECT_LE(RelativeError(encoder.get(), quantized, 32, &rng), kRelTolerance);
}

TEST(Quant, HeterogeneousHeadEncoderUsesActiveHead) {
  ssl::EncoderConfig config;
  config.mlp_dims = {20, 24, 16};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  config.input_head_dims = {10, 14};
  auto encoder = FrozenEncoder(config, 21);
  encoder->SetActiveHead(1);
  QuantizedEncoder quantized(*encoder);
  EXPECT_EQ(quantized.input_dim(), 14);
  util::Rng rng(22);
  EXPECT_LE(RelativeError(encoder.get(), quantized, 24, &rng), kRelTolerance);
}

TEST(Quant, ConvEncoderWithinTolerance) {
  ssl::EncoderConfig config;
  config.backbone = ssl::EncoderConfig::BackboneType::kConv;
  config.conv.channels = 3;
  config.conv.height = 8;
  config.conv.width = 8;
  config.conv.base_width = 8;
  config.projector_hidden = 16;
  config.representation_dim = 8;
  auto encoder = FrozenEncoder(config, 31);
  QuantizedEncoder quantized(*encoder);
  util::Rng rng(32);
  EXPECT_LE(RelativeError(encoder.get(), quantized, 8, &rng), kRelTolerance);
}

TEST(Quant, ForwardIsDeterministic) {
  ssl::EncoderConfig config;
  config.mlp_dims = {16, 24, 16};
  config.projector_hidden = 8;
  config.representation_dim = 8;
  auto encoder = FrozenEncoder(config, 41);
  QuantizedEncoder quantized(*encoder);
  util::Rng rng(42);
  std::vector<float> input = RandomRows(8, encoder->input_dim(), &rng);
  tensor::NoGradGuard no_grad;
  std::vector<float> first(8 * config.representation_dim);
  std::vector<float> second(8 * config.representation_dim);
  quantized.Forward(input.data(), 8, first.data());
  quantized.Forward(input.data(), 8, second.data());
  EXPECT_EQ(first, second);
}

TEST(Quant, ServeSnapshotInt8AccuracyParity) {
  // Two well-separated input clusters; a frozen random encoder keeps them
  // separated in representation space, so kNN over a labeled memory bank
  // classifies queries near-perfectly. Int8 serving embeds both bank and
  // queries through the quantized encoder and must hold that accuracy.
  ssl::EncoderConfig config;
  config.mlp_dims = {24, 32, 16};
  config.projector_hidden = 16;
  config.representation_dim = 8;
  const int64_t d = config.mlp_dims[0];
  util::Rng rng(51);
  std::vector<float> centers = RandomRows(2, d, &rng);
  for (float& x : centers) x *= 4.0f;  // spread the clusters apart
  auto sample = [&](int64_t label) {
    std::vector<float> row(d);
    for (int64_t c = 0; c < d; ++c) {
      row[c] = centers[label * d + c] + rng.Uniform(-0.2f, 0.2f);
    }
    return row;
  };

  const int64_t bank_n = 40, query_n = 30;
  std::vector<float> memory;
  std::vector<int64_t> memory_labels;
  for (int64_t i = 0; i < bank_n; ++i) {
    const int64_t label = i % 2;
    std::vector<float> row = sample(label);
    memory.insert(memory.end(), row.begin(), row.end());
    memory_labels.push_back(label);
  }
  std::vector<float> queries;
  std::vector<int64_t> query_labels;
  for (int64_t i = 0; i < query_n; ++i) {
    const int64_t label = i % 2;
    std::vector<float> row = sample(label);
    queries.insert(queries.end(), row.begin(), row.end());
    query_labels.push_back(label);
  }

  auto accuracy_for = [&](bool int8_serving) {
    serve::SnapshotLoadOptions options;
    options.encoder = config;
    options.int8_serving = int8_serving;
    serve::SnapshotPayload payload;
    // Same seed both times: float and int8 snapshots share weights.
    payload.encoder = FrozenEncoder(config, 52);
    payload.memory_features = memory;
    payload.memory_labels = memory_labels;
    serve::SnapshotRegistry registry;
    serve::SnapshotHandle snapshot =
        registry.Install(std::move(payload), options, "quant_test");
    EXPECT_EQ(snapshot->quantized() != nullptr, int8_serving);
    eval::RepresentationMatrix reps;
    reps.n = query_n;
    reps.d = config.representation_dim;
    reps.values.resize(query_n * reps.d);
    tensor::NoGradGuard no_grad;
    if (int8_serving) {
      snapshot->quantized()->Forward(queries.data(), query_n,
                                     reps.values.data());
    } else {
      tensor::Tensor out = snapshot->encoder()->Forward(
          tensor::Tensor::FromVector(queries, {query_n, d}));
      std::copy(out.data().begin(), out.data().end(), reps.values.begin());
    }
    return snapshot->knn()->Evaluate(reps, query_labels);
  };

  const double float_acc = accuracy_for(false);
  const double int8_acc = accuracy_for(true);
  EXPECT_GE(float_acc, 0.9);
  // Parity: the quantized path must not lose more than one query's worth
  // of accuracy relative to float serving on this separable problem.
  EXPECT_GE(int8_acc, float_acc - 1.0 / static_cast<double>(query_n) - 1e-9);
}

}  // namespace
}  // namespace edsr
