// Tests for retrieval policies (the replay read side) and their registry —
// the mirror of the selector suite in selection_test.cc.
#include "src/cl/retrieval.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace edsr {
namespace {

using cl::MemoryBuffer;
using cl::MemoryEntry;
using cl::RetrievalContext;
using cl::RetrievalPolicy;
using eval::RepresentationMatrix;

RepresentationMatrix MakeReps(std::vector<float> values, int64_t n,
                              int64_t d) {
  RepresentationMatrix m;
  m.values = std::move(values);
  m.n = n;
  m.d = d;
  return m;
}

// A buffer of n entries whose stored (write-time) representation is the
// 2-d point (i, 0).
MemoryBuffer MakeBuffer(int64_t n) {
  MemoryBuffer memory(n);
  std::vector<MemoryEntry> entries(n);
  for (int64_t i = 0; i < n; ++i) {
    entries[i].task_id = 0;
    entries[i].source_index = i;
    entries[i].features = {static_cast<float>(i), 0.0f};
    entries[i].stored_representation = {static_cast<float>(i), 0.0f};
  }
  memory.AddIncrement(std::move(entries));
  return memory;
}

// Current view = stored view: zero drift everywhere.
RepresentationMatrix UndriftedCurrent(const MemoryBuffer& memory) {
  std::vector<float> values;
  for (int64_t i = 0; i < memory.size(); ++i) {
    const std::vector<float>& stored =
        memory.entry(i).stored_representation;
    values.insert(values.end(), stored.begin(), stored.end());
  }
  return MakeReps(std::move(values), memory.size(), 2);
}

std::unique_ptr<RetrievalPolicy> MustCreate(const std::string& spec) {
  util::Result<std::unique_ptr<RetrievalPolicy>> policy =
      cl::RetrievalRegistry::Global().Create(spec);
  EXPECT_TRUE(policy.ok()) << spec << ": " << policy.status().message();
  return std::move(policy).ValueOrDie();
}

// ---- Registry + shared-contract property suite ----------------------------

TEST(RetrievalRegistry, EveryBuiltinConstructsByName) {
  std::vector<std::string> names = cl::RetrievalRegistry::Global().Names();
  ASSERT_GE(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_TRUE(cl::RetrievalRegistry::Global().Contains(name));
    EXPECT_EQ(MustCreate(name)->name(), name);
  }
}

TEST(RetrievalRegistry, UnknownNameListsRegisteredEntries) {
  util::Result<std::unique_ptr<RetrievalPolicy>> result =
      cl::RetrievalRegistry::Global().Create("no-such-policy");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no-such-policy"),
            std::string::npos);
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    EXPECT_NE(result.status().message().find(name), std::string::npos)
        << "error must list " << name;
  }
}

TEST(RetrievalRegistry, ParameterizedSpecsConstruct) {
  EXPECT_EQ(MustCreate("entropy:order=least")->name(), "entropy");
}

TEST(RetrievalRegistry, RejectsUnknownOrMalformedSpecs) {
  EXPECT_FALSE(cl::RetrievalRegistry::Global().Create("").ok());
  EXPECT_FALSE(cl::RetrievalRegistry::Global().Create("uniform:foo=1").ok());
  EXPECT_FALSE(
      cl::RetrievalRegistry::Global().Create("entropy:order=bogus").ok());
}

TEST(RetrievalRegistry, PropertyExactUniqueInRangeForEveryK) {
  MemoryBuffer memory = MakeBuffer(12);
  RepresentationMatrix current = UndriftedCurrent(memory);
  RetrievalContext context;
  context.memory = &memory;
  context.current = &current;
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    std::unique_ptr<RetrievalPolicy> policy = MustCreate(name);
    for (int64_t k : {int64_t{0}, int64_t{5}, memory.size(), int64_t{100}}) {
      util::Rng rng(17);
      std::vector<int64_t> draw =
          cl::DrawRetrieval(policy.get(), context, k, &rng);
      int64_t expected =
          std::min<int64_t>(std::max<int64_t>(k, 0), memory.size());
      EXPECT_EQ(static_cast<int64_t>(draw.size()), expected)
          << name << " at k " << k;
      std::set<int64_t> unique(draw.begin(), draw.end());
      EXPECT_EQ(unique.size(), draw.size()) << name << " drew duplicates";
      for (int64_t index : draw) {
        EXPECT_GE(index, 0) << name;
        EXPECT_LT(index, memory.size()) << name;
      }
    }
  }
}

TEST(RetrievalRegistry, PropertyDeterministicUnderFixedSeed) {
  MemoryBuffer memory = MakeBuffer(12);
  RepresentationMatrix current = UndriftedCurrent(memory);
  RetrievalContext context;
  context.memory = &memory;
  context.current = &current;
  for (const std::string& name : cl::RetrievalRegistry::Global().Names()) {
    std::unique_ptr<RetrievalPolicy> a = MustCreate(name);
    std::unique_ptr<RetrievalPolicy> b = MustCreate(name);
    util::Rng rng_a(21), rng_b(21);
    EXPECT_EQ(cl::DrawRetrieval(a.get(), context, 6, &rng_a),
              cl::DrawRetrieval(b.get(), context, 6, &rng_b))
        << name << " must be deterministic under a fixed seed";
  }
}

TEST(MakeRetrievalOrDie, EmptySpecFallsBackToUniform) {
  EXPECT_EQ(cl::MakeRetrievalOrDie("")->name(), "uniform");
  EXPECT_EQ(cl::MakeRetrievalOrDie("margin")->name(), "margin");
}

// ---- DrawRetrieval edge-case contract -------------------------------------

class StubPolicy : public RetrievalPolicy {
 public:
  explicit StubPolicy(std::vector<int64_t> raw) : raw_(std::move(raw)) {}
  std::vector<int64_t> Draw(const RetrievalContext&, int64_t,
                            util::Rng*) override {
    return raw_;
  }
  std::string name() const override { return "stub"; }

 private:
  std::vector<int64_t> raw_;
};

TEST(DrawRetrieval, DropsDuplicatesAndPadsShortDraws) {
  MemoryBuffer memory = MakeBuffer(8);
  RetrievalContext context;
  context.memory = &memory;
  StubPolicy stub({3, 3, 6});
  util::Rng rng(30);
  EXPECT_EQ(cl::DrawRetrieval(&stub, context, 4, &rng),
            (std::vector<int64_t>{3, 6, 0, 1}));
}

TEST(DrawRetrieval, KCoveringBufferSkipsThePolicy) {
  MemoryBuffer memory = MakeBuffer(3);
  RetrievalContext context;
  context.memory = &memory;
  // Out-of-range stub: would abort if DrawRetrieval consulted it.
  StubPolicy stub({-1});
  util::Rng rng(31);
  EXPECT_EQ(cl::DrawRetrieval(&stub, context, 3, &rng),
            (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(cl::DrawRetrieval(&stub, context, 9, &rng),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(DrawRetrieval, NonPositiveKOrEmptyBufferIsEmpty) {
  MemoryBuffer memory = MakeBuffer(4);
  RetrievalContext context;
  context.memory = &memory;
  StubPolicy stub({0});
  util::Rng rng(32);
  EXPECT_TRUE(cl::DrawRetrieval(&stub, context, 0, &rng).empty());
  EXPECT_TRUE(cl::DrawRetrieval(&stub, context, -3, &rng).empty());
  MemoryBuffer empty(4);
  RetrievalContext empty_context;
  empty_context.memory = &empty;
  EXPECT_TRUE(cl::DrawRetrieval(&stub, empty_context, 2, &rng).empty());
}

TEST(DrawRetrieval, OutOfRangeDrawAborts) {
  MemoryBuffer memory = MakeBuffer(4);
  RetrievalContext context;
  context.memory = &memory;
  StubPolicy stub({99});
  util::Rng rng(33);
  EXPECT_DEATH(cl::DrawRetrieval(&stub, context, 2, &rng), "out-of-range");
}

// ---- Policy behavior -------------------------------------------------------

TEST(MaxLossRetrieval, RanksByDriftFromStoredRepresentation) {
  MemoryBuffer memory = MakeBuffer(6);
  // Drift entries 2 and 4 far from their stored anchors; everyone else is
  // exactly where they were written.
  RepresentationMatrix current = UndriftedCurrent(memory);
  current.values[2 * 2 + 1] = 10.0f;  // entry 2 moved by 10
  current.values[4 * 2 + 1] = 5.0f;   // entry 4 moved by 5
  RetrievalContext context;
  context.memory = &memory;
  context.current = &current;
  cl::MaxLossRetrieval policy;
  EXPECT_TRUE(policy.needs_current_representations());
  util::Rng rng(40);
  EXPECT_EQ(cl::DrawRetrieval(&policy, context, 2, &rng),
            (std::vector<int64_t>{2, 4}));
}

TEST(MaxLossRetrieval, MissingAnchorFallsBackToCurrentNorm) {
  // Legacy entries without stored_representation rank by current norm: the
  // stored anchors are (i, 0), so stripping them makes the largest-index
  // entries (largest norms) replay first.
  MemoryBuffer raw(6);
  std::vector<MemoryEntry> entries(6);
  for (int64_t i = 0; i < 6; ++i) {
    entries[i].task_id = 0;
    entries[i].features = {static_cast<float>(i), 0.0f};
  }
  raw.AddIncrement(std::move(entries));
  std::vector<float> values;
  for (int64_t i = 0; i < 6; ++i) {
    values.push_back(static_cast<float>(i));
    values.push_back(0.0f);
  }
  RepresentationMatrix current = MakeReps(std::move(values), 6, 2);
  RetrievalContext context;
  context.memory = &raw;
  context.current = &current;
  cl::MaxLossRetrieval policy;
  util::Rng rng(41);
  EXPECT_EQ(cl::DrawRetrieval(&policy, context, 2, &rng),
            (std::vector<int64_t>{5, 4}));
}

TEST(EntropyRetrieval, OrderParameterFlipsTheRanking) {
  MemoryBuffer memory = MakeBuffer(5);
  RepresentationMatrix current = UndriftedCurrent(memory);  // norms 0..4
  RetrievalContext context;
  context.memory = &memory;
  context.current = &current;
  util::Rng rng(42);
  std::unique_ptr<RetrievalPolicy> largest = MustCreate("entropy");
  EXPECT_EQ(cl::DrawRetrieval(largest.get(), context, 2, &rng),
            (std::vector<int64_t>{4, 3}));
  std::unique_ptr<RetrievalPolicy> least = MustCreate("entropy:order=least");
  EXPECT_EQ(cl::DrawRetrieval(least.get(), context, 2, &rng),
            (std::vector<int64_t>{0, 1}));
}

TEST(MarginRetrieval, PicksBoundaryEntriesFirst)  {
  // Two tight pairs far apart plus a midpoint equidistant from both: paired
  // points have best ~0 and second = far (huge margin), the midpoint has
  // best == second (margin ~0) — the boundary entry replays first.
  std::vector<float> values = {
      0.0f, 0.0f,   // pair A
      0.1f, 0.0f,
      10.0f, 0.0f,  // pair B
      10.1f, 0.0f,
      5.05f, 0.0f,  // midpoint, equidistant from both pairs (index 4)
  };
  MemoryBuffer memory(5);
  std::vector<MemoryEntry> entries(5);
  for (int64_t i = 0; i < 5; ++i) {
    entries[i].task_id = 0;
    entries[i].features = {values[i * 2], values[i * 2 + 1]};
    entries[i].stored_representation = entries[i].features;
  }
  memory.AddIncrement(std::move(entries));
  RepresentationMatrix current = MakeReps(std::move(values), 5, 2);
  RetrievalContext context;
  context.memory = &memory;
  context.current = &current;
  cl::MarginRetrieval policy;
  util::Rng rng(43);
  std::vector<int64_t> draw = cl::DrawRetrieval(&policy, context, 1, &rng);
  EXPECT_EQ(draw, (std::vector<int64_t>{4}))
      << "the boundary entry must replay first";
}

TEST(UniformRetrieval, MatchesBufferSampleIndices) {
  // Uniform retrieval must consume the rng exactly like the pre-policy
  // MemoryBuffer::SampleIndices path (bit-identical resumed runs depend on
  // this).
  MemoryBuffer memory = MakeBuffer(10);
  RetrievalContext context;
  context.memory = &memory;
  cl::UniformRetrieval policy;
  util::Rng rng_a(44), rng_b(44);
  EXPECT_EQ(cl::DrawRetrieval(&policy, context, 4, &rng_a),
            memory.SampleIndices(4, &rng_b));
}

// ---- Policy state ----------------------------------------------------------

TEST(PolicyState, RoundTripsAndSkipsAsLengthPrefixed) {
  cl::MaxLossRetrieval policy;
  io::BufferWriter out;
  cl::SavePolicyState(policy, &out);
  cl::MaxLossRetrieval restored;
  io::BufferReader in(out.bytes());
  ASSERT_TRUE(cl::LoadPolicyState(&restored, &in).ok());
  EXPECT_TRUE(in.ExpectEnd().ok());
}

TEST(PolicyState, NameMismatchIsRejected) {
  cl::UniformRetrieval uniform;
  io::BufferWriter out;
  cl::SavePolicyState(uniform, &out);
  cl::MarginRetrieval margin;
  io::BufferReader in(out.bytes());
  util::Status status = cl::LoadPolicyState(&margin, &in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("uniform"), std::string::npos);
  EXPECT_NE(status.message().find("margin"), std::string::npos);
}

}  // namespace
}  // namespace edsr
