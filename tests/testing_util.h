// Shared test helpers: finite-difference gradient checking.
#ifndef EDSR_TESTS_TESTING_UTIL_H_
#define EDSR_TESTS_TESTING_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"

namespace edsr::testing {

// Random tensor with |values| in [margin, margin + span), random sign when
// `signed_values`. The margin keeps gradcheck inputs away from kinks and
// singularities (|x| at 0, Log/Sqrt near 0, Clamp bounds).
inline tensor::Tensor RandomTensor(const tensor::Shape& shape, util::Rng* rng,
                                   float margin = 0.2f, float span = 1.0f,
                                   bool signed_values = true,
                                   bool requires_grad = true) {
  std::vector<float> data(tensor::NumElements(shape));
  for (float& v : data) {
    v = margin + rng->Uniform(0.0f, span);
    if (signed_values && rng->Bernoulli(0.5f)) v = -v;
  }
  return tensor::Tensor::FromVector(std::move(data), shape, requires_grad);
}

// Checks the analytic gradient of `loss_fn` w.r.t. each listed input tensor
// against a central finite difference. `loss_fn` must rebuild the graph from
// the current input data on every call (inputs are perturbed in place).
inline void ExpectGradientsMatch(
    const std::function<tensor::Tensor()>& loss_fn,
    const std::vector<tensor::Tensor>& inputs, float eps = 1e-3f,
    float tol = 2e-2f) {
  // Analytic gradients.
  for (const tensor::Tensor& t : inputs) {
    const_cast<tensor::Tensor&>(t).ZeroGrad();
  }
  tensor::Tensor loss = loss_fn();
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (const tensor::Tensor& t : inputs) {
    analytic.push_back(t.impl()->grad.empty()
                           ? std::vector<float>(t.numel(), 0.0f)
                           : t.impl()->grad);
  }

  // Numeric gradients, element by element.
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    tensor::Tensor t = inputs[ti];
    std::vector<float>& data = t.mutable_data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      float saved = data[i];
      data[i] = saved + eps;
      float plus = loss_fn().item();
      data[i] = saved - eps;
      float minus = loss_fn().item();
      data[i] = saved;
      float numeric = (plus - minus) / (2.0f * eps);
      float ana = analytic[ti][i];
      float scale = std::max({1.0f, std::fabs(numeric), std::fabs(ana)});
      EXPECT_NEAR(ana, numeric, tol * scale)
          << "input " << ti << " element " << i;
    }
  }
}

}  // namespace edsr::testing

#endif  // EDSR_TESTS_TESTING_UTIL_H_
