// Tests for the core EDSR strategy: entropy-based selection stage,
// noise calculation, and the three replay-loss modes.
#include "src/core/edsr.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/cl/trainer.h"
#include "src/core/noise.h"
#include "src/data/synthetic.h"

namespace edsr {
namespace {

using cl::StrategyContext;
using core::Edsr;
using core::EdsrOptions;
using core::ReplayLossMode;
using data::TaskSequence;

StrategyContext TinyContext(uint64_t seed = 0) {
  StrategyContext context;
  context.encoder.mlp_dims = {48, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.epochs = 3;
  context.batch_size = 16;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = seed;
  return context;
}

TaskSequence TinySequence(uint64_t seed, int64_t tasks = 2) {
  data::SyntheticImageConfig config;
  config.name = "tiny";
  config.num_classes = 2 * tasks;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 3.5f;
  config.seed = seed;
  auto pair = MakeSyntheticImageData(config);
  return TaskSequence::SplitByClasses(pair.train, pair.test, tasks, nullptr);
}

// ---- Noise calculator -------------------------------------------------

TEST(KnnNoise, NeighborsAreNearest) {
  eval::RepresentationMatrix reps;
  reps.values = {0, 0, 1, 0, 5, 0, 1.2f, 0};
  reps.n = 4;
  reps.d = 2;
  std::vector<int64_t> nn = core::NearestNeighbors(reps, 0, 2);
  std::set<int64_t> set(nn.begin(), nn.end());
  EXPECT_EQ(set, (std::set<int64_t>{1, 3}));
}

TEST(KnnNoise, ScaleIsPerDimensionStd) {
  // Neighbors of index 0 are rows 1 and 2: dim0 values {1, 3} (std 1),
  // dim1 values {0, 0} (std 0).
  eval::RepresentationMatrix reps;
  reps.values = {0, 0, 1, 0, 3, 0, 100, 100};
  reps.n = 4;
  reps.d = 2;
  std::vector<float> scale = core::KnnNoiseScale(reps, 0, 2);
  EXPECT_NEAR(scale[0], 1.0f, 1e-5f);
  EXPECT_NEAR(scale[1], 0.0f, 1e-6f);
}

TEST(KnnNoise, ZeroNeighborsGivesZeroScale) {
  eval::RepresentationMatrix reps;
  reps.values = {1, 2, 3, 4};
  reps.n = 2;
  reps.d = 2;
  std::vector<float> scale = core::KnnNoiseScale(reps, 0, 0);
  EXPECT_EQ(scale, (std::vector<float>{0.0f, 0.0f}));
}

TEST(KnnNoise, KClampedToAvailable) {
  eval::RepresentationMatrix reps;
  reps.values = {0, 0, 1, 1, 2, 2};
  reps.n = 3;
  reps.d = 2;
  EXPECT_EQ(core::NearestNeighbors(reps, 0, 50).size(), 2u);
}

// ---- EDSR strategy ------------------------------------------------------

TEST(EdsrStrategy, SelectionStageFillsMemoryWithNoise) {
  StrategyContext context = TinyContext(1);
  Edsr strategy(context);
  TaskSequence seq = TinySequence(31);
  strategy.LearnIncrement(seq.task(0));
  ASSERT_EQ(strategy.memory().size(), context.memory_per_task);
  const cl::MemoryEntry& entry = strategy.memory().entry(0);
  EXPECT_EQ(static_cast<int64_t>(entry.noise_scale.size()),
            context.encoder.representation_dim);
  double total_scale = 0.0;
  for (const cl::MemoryEntry& e : strategy.memory().entries()) {
    for (float s : e.noise_scale) total_scale += s;
  }
  EXPECT_GT(total_scale, 0.0) << "kNN noise scales should not all be zero";
}

TEST(EdsrStrategy, DisModeStoresNoNoise) {
  StrategyContext context = TinyContext(2);
  EdsrOptions options;
  options.replay_mode = ReplayLossMode::kDis;
  Edsr strategy(context, options);
  TaskSequence seq = TinySequence(32);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_TRUE(strategy.memory().entry(0).noise_scale.empty());
}

class ReplayModeTest : public ::testing::TestWithParam<ReplayLossMode> {};

TEST_P(ReplayModeTest, TwoIncrementsRunAndStayAboveChance) {
  StrategyContext context = TinyContext(3);
  EdsrOptions options;
  options.replay_mode = GetParam();
  Edsr strategy(context, options);
  TaskSequence seq = TinySequence(33);
  cl::ContinualRunResult result = cl::RunContinual(&strategy, seq, {});
  EXPECT_GT(result.matrix.FinalAcc(), 0.45);
  EXPECT_EQ(strategy.memory().size(), 2 * context.memory_per_task);
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplayModeTest,
                         ::testing::Values(ReplayLossMode::kCss,
                                           ReplayLossMode::kDis,
                                           ReplayLossMode::kRpl));

TEST(EdsrStrategy, SelectedSamplesSpanHighEntropySubset) {
  // The stored subset should have a larger representation-space trace than
  // a random subset of the same size, by construction.
  StrategyContext context = TinyContext(4);
  context.epochs = 4;
  Edsr strategy(context);
  TaskSequence seq = TinySequence(34);
  strategy.LearnIncrement(seq.task(0));

  eval::RepresentationMatrix reps = eval::ExtractRepresentations(
      strategy.encoder(), seq.task(0).train);
  auto subset_norm = [&](const std::vector<int64_t>& subset) {
    double total = 0.0;
    for (int64_t i : subset) {
      for (int64_t j = 0; j < reps.d; ++j) {
        total += static_cast<double>(reps.Row(i)[j]) * reps.Row(i)[j];
      }
    }
    return total;
  };
  std::vector<int64_t> stored;
  for (const cl::MemoryEntry& e : strategy.memory().entries()) {
    stored.push_back(e.source_index);
  }
  util::Rng rng(99);
  double random_avg = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    random_avg += subset_norm(rng.SampleWithoutReplacement(
        seq.task(0).train.size(), static_cast<int64_t>(stored.size())));
  }
  random_avg /= 20.0;
  EXPECT_GE(subset_norm(stored), random_avg);
}

TEST(EdsrStrategy, CustomSelectorIsUsed) {
  StrategyContext context = TinyContext(5);
  EdsrOptions options;
  Edsr strategy(context, options, std::make_unique<cl::RandomSelector>(),
                "edsr-random");
  EXPECT_EQ(strategy.selector().name(), "random");
  EXPECT_EQ(strategy.name(), "edsr-random");
  TaskSequence seq = TinySequence(35);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_EQ(strategy.memory().size(), context.memory_per_task);
}

TEST(EdsrStrategy, MinVarSelectorComputesVariance) {
  StrategyContext context = TinyContext(6);
  context.epochs = 2;
  EdsrOptions options;
  options.variance_views = 3;
  Edsr strategy(context, options, std::make_unique<cl::MinVarSelector>(),
                "edsr-minvar");
  TaskSequence seq = TinySequence(36);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_EQ(strategy.memory().size(), context.memory_per_task);
}

TEST(EdsrStrategy, ForgetsLessThanFinetune) {
  // The headline qualitative claim (Table III shape): EDSR's forgetting is
  // no worse than plain finetuning on the same sequence. Averaged over
  // seeds to damp noise at this tiny scale.
  double finetune_fgt = 0.0;
  double edsr_fgt = 0.0;
  for (uint64_t seed = 0; seed < 2; ++seed) {
    StrategyContext context = TinyContext(seed);
    context.epochs = 4;
    TaskSequence seq = TinySequence(40 + seed, 3);
    cl::Finetune finetune(context);
    Edsr edsr_strategy(context);
    finetune_fgt += cl::RunContinual(&finetune, seq, {}).matrix.FinalFgt();
    edsr_fgt += cl::RunContinual(&edsr_strategy, seq, {}).matrix.FinalFgt();
  }
  EXPECT_LE(edsr_fgt, finetune_fgt + 0.05);
}

TEST(EdsrStrategy, TabularHeterogeneousReplay) {
  // EDSR end-to-end on two tabular increments with different dims: replay
  // must route memory through the correct input head.
  data::SyntheticTabularConfig a, b;
  a.name = "a";
  a.num_features = 5;
  a.train_size = 40;
  a.test_size = 16;
  a.seed = 41;
  b.name = "b";
  b.num_features = 9;
  b.train_size = 40;
  b.test_size = 16;
  b.seed = 42;
  auto pa = MakeSyntheticTabularData(a);
  auto pb = MakeSyntheticTabularData(b);
  TaskSequence seq = TaskSequence::FromDatasets(
      {{pa.train, pa.test}, {pb.train, pb.test}});

  StrategyContext context;
  context.encoder.mlp_dims = {12, 24, 24};
  context.encoder.projector_hidden = 24;
  context.encoder.representation_dim = 12;
  context.encoder.input_head_dims = {5, 9};
  context.epochs = 3;
  context.batch_size = 16;
  context.use_adam = true;
  context.memory_per_task = 6;
  context.replay_batch_size = 8;
  context.seed = 43;

  Edsr strategy(context);
  cl::ContinualRunResult result = cl::RunContinual(&strategy, seq, {});
  EXPECT_EQ(strategy.memory().size(), 12);
  // Entries from different increments have different feature dims.
  EXPECT_EQ(strategy.memory().entry(0).features.size(), 5u);
  EXPECT_EQ(strategy.memory().entry(6).features.size(), 9u);
  EXPECT_GE(result.matrix.FinalAcc(), 0.3);
}

}  // namespace
}  // namespace edsr
