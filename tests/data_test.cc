// Tests for datasets, synthetic generators, task splitting, and batching.
#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/data/batching.h"
#include "src/data/task_sequence.h"

namespace edsr {
namespace {

using data::Dataset;
using data::SyntheticImageConfig;
using data::SyntheticTabularConfig;
using data::TaskSequence;

SyntheticImageConfig TinyImageConfig() {
  SyntheticImageConfig config;
  config.name = "tiny";
  config.num_classes = 4;
  config.train_per_class = 10;
  config.test_per_class = 5;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.seed = 123;
  return config;
}

TEST(Dataset, BasicAccessors) {
  Dataset d("toy", {1, 2, 3, 4, 5, 6}, {0, 1}, 3, 2);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.dim(), 3);
  EXPECT_FALSE(d.is_image());
  EXPECT_EQ(d.Row(1)[2], 6.0f);
  EXPECT_EQ(d.Label(1), 1);
}

TEST(Dataset, RejectsInconsistentShapes) {
  EXPECT_DEATH(Dataset("bad", {1, 2, 3}, {0, 1}, 2, 2), "mismatch");
  EXPECT_DEATH(Dataset("bad", {1, 2}, {0, 5}, 1, 2), "out of range");
}

TEST(Dataset, GatherAndSubset) {
  Dataset d("toy", {1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 0, 1}, 2, 2);
  tensor::Tensor batch = d.Gather({3, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 2}));
  EXPECT_EQ(batch.at(0, 0), 7.0f);
  EXPECT_EQ(batch.at(1, 1), 2.0f);
  Dataset sub = d.Subset({1, 2}, "sub");
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.Label(0), 1);
  EXPECT_EQ(sub.Row(1)[0], 5.0f);
}

TEST(Dataset, IndicesOfClasses) {
  Dataset d("toy", {1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2, 1}, 2, 3);
  std::vector<int64_t> idx = d.IndicesOfClasses({1});
  EXPECT_EQ(idx, (std::vector<int64_t>{1, 3}));
}

TEST(SyntheticImage, ShapesAndRanges) {
  data::SyntheticImagePair pair = MakeSyntheticImageData(TinyImageConfig());
  EXPECT_EQ(pair.train.size(), 40);
  EXPECT_EQ(pair.test.size(), 20);
  EXPECT_EQ(pair.train.dim(), 48);
  EXPECT_TRUE(pair.train.is_image());
  for (float v : pair.train.features()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticImage, Deterministic) {
  data::SyntheticImagePair a = MakeSyntheticImageData(TinyImageConfig());
  data::SyntheticImagePair b = MakeSyntheticImageData(TinyImageConfig());
  EXPECT_EQ(a.train.features(), b.train.features());
}

TEST(SyntheticImage, ClassesAreSeparated) {
  // Same-class pixel distance should be smaller on average than
  // cross-class distance, otherwise no unsupervised method can work.
  SyntheticImageConfig config = TinyImageConfig();
  config.train_per_class = 20;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  const Dataset& d = pair.train;
  double same = 0.0, cross = 0.0;
  int64_t same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < d.size(); ++i) {
    for (int64_t j = i + 1; j < d.size(); ++j) {
      double dist = 0.0;
      for (int64_t k = 0; k < d.dim(); ++k) {
        double diff = d.Row(i)[k] - d.Row(j)[k];
        dist += diff * diff;
      }
      if (d.Label(i) == d.Label(j)) {
        same += dist;
        ++same_n;
      } else {
        cross += dist;
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, 0.8 * cross / cross_n);
}

TEST(SyntheticImage, TrainTestShareStructure) {
  // A test image should be closer (on average) to train images of its own
  // class than to other classes.
  SyntheticImageConfig config = TinyImageConfig();
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  int correct = 0;
  for (int64_t t = 0; t < pair.test.size(); ++t) {
    std::vector<double> class_dist(config.num_classes, 0.0);
    std::vector<int> class_count(config.num_classes, 0);
    for (int64_t i = 0; i < pair.train.size(); ++i) {
      double dist = 0.0;
      for (int64_t k = 0; k < pair.train.dim(); ++k) {
        double diff = pair.test.Row(t)[k] - pair.train.Row(i)[k];
        dist += diff * diff;
      }
      class_dist[pair.train.Label(i)] += dist;
      class_count[pair.train.Label(i)] += 1;
    }
    int64_t best = 0;
    double best_val = 1e30;
    for (int64_t c = 0; c < config.num_classes; ++c) {
      double avg = class_dist[c] / class_count[c];
      if (avg < best_val) {
        best_val = avg;
        best = c;
      }
    }
    if (best == pair.test.Label(t)) ++correct;
  }
  // Nearest-class-mean in pixel space should beat chance comfortably.
  EXPECT_GT(correct, pair.test.size() / 2);
}

TEST(SyntheticImage, PresetsMatchPaperStructure) {
  // Scaled class counts; split structure mirrors the paper (5/10/10/15
  // increments with equal class chunks).
  EXPECT_EQ(data::SynthCifar10Config(0).num_classes % 5, 0);
  EXPECT_EQ(data::SynthCifar100Config(0).num_classes % 10, 0);
  EXPECT_EQ(data::SynthTinyImageNetConfig(0).num_classes % 10, 0);
  EXPECT_EQ(data::SynthDomainNetConfig(0).num_classes % 15, 0);
  // Relative difficulty ordering is preserved.
  EXPECT_GT(data::SynthCifar10Config(0).class_separation,
            data::SynthCifar100Config(0).class_separation);
  EXPECT_GT(data::SynthCifar100Config(0).class_separation,
            data::SynthTinyImageNetConfig(0).class_separation);
  EXPECT_GT(data::SynthDomainNetConfig(0).style_strength, 0.0f);
  // Different seeds must give different data.
  auto a = MakeSyntheticImageData(data::SynthCifar10Config(0));
  auto b = MakeSyntheticImageData(data::SynthCifar10Config(1));
  EXPECT_NE(a.train.features(), b.train.features());
}

TEST(SyntheticTabular, PositiveRateRespected) {
  SyntheticTabularConfig config;
  config.train_size = 4000;
  config.positive_rate = 0.25f;
  config.seed = 9;
  data::SyntheticTabularPair pair = MakeSyntheticTabularData(config);
  int64_t positives = 0;
  for (int64_t label : pair.train.labels()) positives += label;
  double rate = static_cast<double>(positives) / pair.train.size();
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(SyntheticTabular, BenchmarkPresetsMatchTable2) {
  std::vector<SyntheticTabularConfig> configs =
      data::TabularBenchmarkConfigs(0);
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].num_features, 16);  // Bank
  EXPECT_NEAR(configs[0].positive_rate, 0.117f, 1e-4f);
  EXPECT_EQ(configs[3].num_features, 20);  // BlastChar
  EXPECT_EQ(configs[4].num_features, 10);  // Shrutime
  // Heterogeneous dims is the property the tabular experiment exercises.
  std::set<int64_t> dims;
  for (const auto& c : configs) dims.insert(c.num_features);
  EXPECT_EQ(dims.size(), 5u);
}

TEST(TaskSequence, SplitByClassesPartitions) {
  SyntheticImageConfig config = TinyImageConfig();
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  TaskSequence seq =
      TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);
  EXPECT_EQ(seq.num_tasks(), 2);
  EXPECT_EQ(seq.task(0).classes, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(seq.task(1).classes, (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(seq.task(0).train.size(), 20);
  EXPECT_EQ(seq.task(0).test.size(), 10);
  // Disjoint: no class appears in two tasks.
  for (int64_t i = 0; i < seq.task(0).train.size(); ++i) {
    EXPECT_LT(seq.task(0).train.Label(i), 2);
  }
}

TEST(TaskSequence, ShuffledClassOrder) {
  SyntheticImageConfig config = TinyImageConfig();
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  util::Rng rng(77);
  TaskSequence seq =
      TaskSequence::SplitByClasses(pair.train, pair.test, 4, &rng);
  std::set<int64_t> seen;
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t c : seq.task(t).classes) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 4u);  // every class exactly once
}

TEST(TaskSequence, IndivisibleClassCountDies) {
  SyntheticImageConfig config = TinyImageConfig();
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  EXPECT_DEATH(TaskSequence::SplitByClasses(pair.train, pair.test, 3, nullptr),
               "divisible");
}

TEST(TaskSequence, MergedTrainAccumulates) {
  SyntheticImageConfig config = TinyImageConfig();
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  TaskSequence seq =
      TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);
  EXPECT_EQ(seq.MergedTrain(0).size(), 20);
  EXPECT_EQ(seq.MergedTrain(1).size(), 40);
  EXPECT_EQ(seq.MergedTest(1).size(), 20);
}

TEST(TaskSequence, FromDatasetsKeepsOrder) {
  std::vector<SyntheticTabularConfig> configs =
      data::TabularBenchmarkConfigs(1);
  std::vector<std::pair<Dataset, Dataset>> pairs;
  for (const auto& c : configs) {
    auto p = MakeSyntheticTabularData(c);
    pairs.emplace_back(p.train, p.test);
  }
  TaskSequence seq = TaskSequence::FromDatasets(pairs);
  EXPECT_EQ(seq.num_tasks(), 5);
  EXPECT_EQ(seq.task(0).train.dim(), 16);
  EXPECT_EQ(seq.task(3).train.dim(), 20);
}

TEST(BatchIterator, CoversAllIndicesOncePerEpoch) {
  util::Rng rng(5);
  data::BatchIterator it(23, 5, &rng);
  std::vector<int64_t> batch;
  std::set<int64_t> seen;
  int64_t total = 0;
  while (it.Next(&batch)) {
    for (int64_t i : batch) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index in epoch";
    }
    total += batch.size();
  }
  EXPECT_EQ(total, 23);
  it.Reset();
  total = 0;
  while (it.Next(&batch)) total += batch.size();
  EXPECT_EQ(total, 23);
}

TEST(BatchIterator, DropsTinyTail) {
  util::Rng rng(6);
  data::BatchIterator it(9, 4, &rng, /*min_batch=*/2);
  // 9 = 4 + 4 + 1; the final singleton is dropped.
  std::vector<int64_t> batch;
  int64_t total = 0;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(batches, 2);
  EXPECT_EQ(total, 8);
  EXPECT_EQ(it.batches_per_epoch(), 2);
}

TEST(ImagePresets, NamesCoverEveryBenchmark) {
  std::vector<std::string> names = data::ImagePresetNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "SynthCifar10");
  for (const std::string& name : names) {
    auto config = data::ImagePresetConfig(name, /*seed=*/3);
    ASSERT_TRUE(config.ok()) << name;
    EXPECT_GT((*config).num_classes, 0) << name;
  }
}

TEST(ImagePresets, LookupIsSeededAndMatchesDirectConfig) {
  auto config = data::ImagePresetConfig("SynthCifar10", /*seed=*/5);
  ASSERT_TRUE(config.ok());
  data::SyntheticImageConfig direct = data::SynthCifar10Config(5);
  EXPECT_EQ((*config).name, direct.name);
  EXPECT_EQ((*config).num_classes, direct.num_classes);
  EXPECT_EQ((*config).seed, direct.seed);
}

TEST(ImagePresets, UnknownNameListsPresets) {
  auto config = data::ImagePresetConfig("Cifar10", /*seed=*/0);
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("SynthCifar10"),
            std::string::npos);
  EXPECT_NE(config.status().message().find("SynthDomainNet"),
            std::string::npos);
}

}  // namespace
}  // namespace edsr
