// Tests for eigendecomposition, covariance, and PCA.
#include "src/linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/linalg/pca.h"
#include "src/util/rng.h"

namespace edsr {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  std::vector<float> m = {3, 0, 0,
                          0, 1, 0,
                          0, 0, 2};
  linalg::EigenDecomposition eig = linalg::SymmetricEigen(m, 3);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0f, 1e-5f);
  // Leading eigenvector is e0 up to sign.
  std::vector<float> v = eig.Eigenvector(0);
  EXPECT_NEAR(std::fabs(v[0]), 1.0f, 1e-5f);
  EXPECT_NEAR(v[1], 0.0f, 1e-5f);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<float> m = {2, 1, 1, 2};
  linalg::EigenDecomposition eig = linalg::SymmetricEigen(m, 2);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0f, 1e-5f);
  std::vector<float> v0 = eig.Eigenvector(0);
  EXPECT_NEAR(std::fabs(v0[0] / v0[1]), 1.0f, 1e-4f);
}

TEST(SymmetricEigen, AsymmetricInputDies) {
  std::vector<float> m = {1, 2, 5, 1};
  EXPECT_DEATH(linalg::SymmetricEigen(m, 2), "symmetric");
}

// Property test: reconstruction A = V diag(w) V^T and orthonormality of V
// on random symmetric matrices.
class EigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, ReconstructsAndOrthonormal) {
  util::Rng rng(GetParam());
  int64_t d = rng.UniformInt(2, 12);
  std::vector<float> m(d * d);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      float v = rng.Normal();
      m[i * d + j] = v;
      m[j * d + i] = v;
    }
  }
  linalg::EigenDecomposition eig = linalg::SymmetricEigen(m, d);
  // Eigenvalues are descending.
  for (int64_t j = 1; j < d; ++j) {
    EXPECT_GE(eig.eigenvalues[j - 1], eig.eigenvalues[j] - 1e-5f);
  }
  // Orthonormal columns.
  for (int64_t a = 0; a < d; ++a) {
    std::vector<float> va = eig.Eigenvector(a);
    for (int64_t b = a; b < d; ++b) {
      std::vector<float> vb = eig.Eigenvector(b);
      double dot = 0.0;
      for (int64_t i = 0; i < d; ++i) dot += va[i] * vb[i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-4);
    }
  }
  // Reconstruction.
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        acc += eig.eigenvalues[k] * eig.eigenvectors[i * d + k] *
               eig.eigenvectors[j * d + k];
      }
      EXPECT_NEAR(acc, m[i * d + j], 1e-3) << "entry (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, EigenPropertyTest,
                         ::testing::Range(0, 20));

TEST(Covariance, GramMatchesManual) {
  // rows = [[1,2],[3,4]]; A^T A = [[10,14],[14,20]].
  std::vector<float> rows = {1, 2, 3, 4};
  std::vector<float> cov = linalg::CovarianceGram(rows, 2, 2);
  EXPECT_FLOAT_EQ(cov[0], 10.0f);
  EXPECT_FLOAT_EQ(cov[1], 14.0f);
  EXPECT_FLOAT_EQ(cov[2], 14.0f);
  EXPECT_FLOAT_EQ(cov[3], 20.0f);
}

TEST(Covariance, TraceOfGramIsSumSquaredNorms) {
  util::Rng rng(3);
  int64_t n = 17, d = 5;
  std::vector<float> rows(n * d);
  for (float& v : rows) v = rng.Normal();
  std::vector<float> cov = linalg::CovarianceGram(rows, n, d);
  double norms = 0.0;
  for (float v : rows) norms += static_cast<double>(v) * v;
  EXPECT_NEAR(linalg::Trace(cov, d), norms, 1e-3 * norms);
}

TEST(Covariance, CenteredHasZeroMeanEffect) {
  // Constant rows have zero centered covariance.
  std::vector<float> rows = {5, 5, 5, 5, 5, 5};  // 3 x 2 all fives
  std::vector<float> cov = linalg::CovarianceCentered(rows, 3, 2);
  for (float v : cov) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(LogDet, MatchesClosedFormForDiagonal) {
  std::vector<float> m = {2, 0, 0, 3};
  double expected = std::log(1.0 + 0.5 * 2.0) + std::log(1.0 + 0.5 * 3.0);
  EXPECT_NEAR(linalg::LogDetIdentityPlus(m, 2, 0.5), expected, 1e-6);
}

TEST(Pca, RecoversDominantDirection) {
  // Points spread along (1,1)/sqrt(2) with small orthogonal noise.
  util::Rng rng(5);
  int64_t n = 400, d = 2;
  std::vector<float> rows(n * d);
  for (int64_t i = 0; i < n; ++i) {
    float major = rng.Normal(0.0f, 5.0f);
    float minor = rng.Normal(0.0f, 0.3f);
    rows[i * d + 0] = (major + minor) * 0.70710678f;
    rows[i * d + 1] = (major - minor) * 0.70710678f;
  }
  linalg::Pca pca = linalg::Pca::Fit(rows, n, d, 2, /*center=*/true);
  std::vector<float> c0 = pca.Component(0);
  EXPECT_NEAR(std::fabs(c0[0]), 0.7071f, 0.02f);
  EXPECT_NEAR(std::fabs(c0[1]), 0.7071f, 0.02f);
  EXPECT_GT(pca.explained_variance()[0], 10.0f * pca.explained_variance()[1]);
}

TEST(Pca, LeverageHigherForExtremePoints) {
  // A far-out point along the principal direction has higher leverage than
  // a point near the mean.
  util::Rng rng(6);
  int64_t n = 100, d = 3;
  std::vector<float> rows(n * d);
  for (float& v : rows) v = rng.Normal();
  linalg::Pca pca = linalg::Pca::Fit(rows, n, d, 2);
  std::vector<float> near_mean(d, 0.01f);
  std::vector<float> extreme = pca.Component(0);
  for (float& v : extreme) v *= 10.0f;
  EXPECT_GT(pca.LeverageScore(extreme.data()),
            pca.LeverageScore(near_mean.data()));
}

TEST(Pca, UncenteredUsesGram) {
  // With center=false and a single repeated row x, the top component must be
  // x/|x| even though the centered covariance would vanish.
  std::vector<float> rows = {3, 4, 3, 4, 3, 4};  // 3 rows of (3,4)
  linalg::Pca pca = linalg::Pca::Fit(rows, 3, 2, 1, /*center=*/false);
  std::vector<float> c0 = pca.Component(0);
  EXPECT_NEAR(std::fabs(c0[0]), 0.6f, 1e-4f);
  EXPECT_NEAR(std::fabs(c0[1]), 0.8f, 1e-4f);
}

}  // namespace
}  // namespace edsr
