// Online-daemon suites: the CRC'd ingest journal (torn-tail truncation,
// gap detection), the reusable TriggerGate, the learn-serve cycle loop
// (ingest -> trigger -> train -> checkpoint -> hot-swap), crash-resume
// bit-identity, the kIngest protocol path (typed dim-mismatch errors,
// unconfigured servers), and concurrent train+serve under load.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/daemon/daemon.h"
#include "src/daemon/journal.h"
#include "src/io/serialize.h"
#include "src/serve/tcp_server.h"
#include "src/ssl/encoder.h"
#include "src/stream/gate.h"
#include "src/stream/source.h"
#include "src/stream/trigger.h"
#include "src/util/rng.h"

namespace edsr::daemon {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

JournalRecord MakeRecord(uint64_t seq, int64_t dim = 4) {
  JournalRecord record;
  record.seq = seq;
  record.label = static_cast<int64_t>(seq % 3);
  record.features.assign(dim, static_cast<float>(seq) * 0.25f);
  return record;
}

// ---- IngestJournal -------------------------------------------------------

TEST(IngestJournal, RoundTripReplaysInOrder) {
  const std::string path = TestDir("journal_roundtrip") + "/j.log";
  {
    IngestJournal journal;
    std::vector<JournalRecord> replayed;
    ASSERT_TRUE(journal.Open(path, /*fsync_each=*/false, &replayed).ok());
    EXPECT_TRUE(replayed.empty());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      ASSERT_TRUE(journal.Append(MakeRecord(seq)).ok());
    }
    EXPECT_EQ(journal.last_seq(), 5u);
  }
  IngestJournal journal;
  std::vector<JournalRecord> replayed;
  ASSERT_TRUE(journal.Open(path, false, &replayed).ok());
  ASSERT_EQ(replayed.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(replayed[seq - 1].seq, seq);
    EXPECT_EQ(replayed[seq - 1].label, static_cast<int64_t>(seq % 3));
    EXPECT_EQ(replayed[seq - 1].features, MakeRecord(seq).features);
  }
  EXPECT_EQ(journal.last_seq(), 5u);
}

TEST(IngestJournal, AppendEnforcesSeqContinuity) {
  const std::string path = TestDir("journal_seq") + "/j.log";
  IngestJournal journal;
  ASSERT_TRUE(journal.Open(path, false, nullptr).ok());
  ASSERT_TRUE(journal.Append(MakeRecord(1)).ok());
  EXPECT_FALSE(journal.Append(MakeRecord(3)).ok());  // gap
  EXPECT_FALSE(journal.Append(MakeRecord(1)).ok());  // replaying backwards
  EXPECT_TRUE(journal.Append(MakeRecord(2)).ok());
}

TEST(IngestJournal, TruncatesTornTailAndKeepsAppending) {
  const std::string path = TestDir("journal_torn") + "/j.log";
  {
    IngestJournal journal;
    ASSERT_TRUE(journal.Open(path, false, nullptr).ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(journal.Append(MakeRecord(seq)).ok());
    }
  }
  const std::string intact = ReadFile(path);
  // A kill mid-write leaves a partial frame: half a header plus garbage.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(intact.data(), 7);
  }
  {
    IngestJournal journal;
    std::vector<JournalRecord> replayed;
    ASSERT_TRUE(journal.Open(path, false, &replayed).ok());
    EXPECT_EQ(replayed.size(), 3u);
    ASSERT_TRUE(journal.Append(MakeRecord(4)).ok());
  }
  // The torn bytes are gone: a third open sees 4 intact records.
  IngestJournal journal;
  std::vector<JournalRecord> replayed;
  ASSERT_TRUE(journal.Open(path, false, &replayed).ok());
  EXPECT_EQ(replayed.size(), 4u);
  EXPECT_EQ(journal.last_seq(), 4u);
}

TEST(IngestJournal, CorruptPayloadTruncatesFromThere) {
  const std::string path = TestDir("journal_crc") + "/j.log";
  {
    IngestJournal journal;
    ASSERT_TRUE(journal.Open(path, false, nullptr).ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(journal.Append(MakeRecord(seq)).ok());
    }
  }
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x5A;  // flip a bit inside record 2
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  IngestJournal journal;
  std::vector<JournalRecord> replayed;
  ASSERT_TRUE(journal.Open(path, false, &replayed).ok());
  EXPECT_LT(replayed.size(), 3u);  // everything from the flipped record on
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].seq, i + 1);
  }
}

TEST(IngestJournal, SeqGapInFileIsCorruptionNotTail) {
  const std::string path = TestDir("journal_gap") + "/j.log";
  const std::string scratch = TestDir("journal_gap_scratch") + "/j.log";
  {
    // Build two separate valid journals and splice record "2" from one
    // whose seq counter was ahead: frames are intact, ordering is not.
    IngestJournal journal;
    ASSERT_TRUE(journal.Open(path, false, nullptr).ok());
    ASSERT_TRUE(journal.Append(MakeRecord(1)).ok());
  }
  {
    IngestJournal journal;
    ASSERT_TRUE(journal.Open(scratch, false, nullptr).ok());
    ASSERT_TRUE(journal.Append(MakeRecord(1)).ok());
    ASSERT_TRUE(journal.Append(MakeRecord(2)).ok());
    ASSERT_TRUE(journal.Append(MakeRecord(3)).ok());
  }
  const std::string first = ReadFile(path);
  const std::string donor = ReadFile(scratch);
  const size_t frame = first.size();  // all MakeRecord frames are equal-size
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(donor.data() + 2 * frame, static_cast<std::streamsize>(frame));
  }
  IngestJournal journal;
  util::Status status = journal.Open(path, false, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
}

// ---- TriggerGate ---------------------------------------------------------

TEST(TriggerGate, SerializeRestoreContinuesIdentically) {
  auto trigger =
      std::move(stream::TriggerRegistry::Global().Create("count:n=12"))
          .ValueOrDie();
  stream::TriggerGate gate(trigger.get());
  gate.Reset(0, 0);
  EXPECT_EQ(gate.OnMicroBatch(4, nullptr), "");
  EXPECT_EQ(gate.OnMicroBatch(4, nullptr), "");

  io::BufferWriter out;
  gate.Serialize(&out);

  auto trigger2 =
      std::move(stream::TriggerRegistry::Global().Create("count:n=12"))
          .ValueOrDie();
  stream::TriggerGate restored(trigger2.get());
  io::BufferReader in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_EQ(restored.context().samples_in_cycle, 8);
  EXPECT_EQ(restored.context().total_samples, 8);

  // Both gates fire on the very next micro-batch, in lockstep.
  EXPECT_EQ(gate.OnMicroBatch(4, nullptr), "count");
  EXPECT_EQ(restored.OnMicroBatch(4, nullptr), "count");
  gate.CloseCycle();
  restored.CloseCycle();
  EXPECT_EQ(restored.context().cycle, gate.context().cycle);
  EXPECT_EQ(restored.context().samples_in_cycle, 0);
}

TEST(TriggerGate, DeserializeRejectsDifferentTrigger) {
  auto count =
      std::move(stream::TriggerRegistry::Global().Create("count:n=12"))
          .ValueOrDie();
  stream::TriggerGate gate(count.get());
  gate.Reset(0, 0);
  io::BufferWriter out;
  gate.Serialize(&out);

  auto drift = std::move(stream::TriggerRegistry::Global().Create(
                             "drift:threshold=0.5,min=4,max=64,check=1"))
                   .ValueOrDie();
  stream::TriggerGate other(drift.get());
  io::BufferReader in(out.bytes());
  util::Status status = other.Deserialize(&in);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

// ---- LearnServeDaemon ----------------------------------------------------

DaemonOptions TinyOptions(const std::string& dir) {
  DaemonOptions options;
  options.directory = dir;
  options.preset = "SynthCifar10";  // dim 192 (3x8x8), 10 classes
  options.trigger_spec = "count:n=8";
  options.micro_batch = 4;
  options.memory_per_task = 4;
  options.replay_batch_size = 4;
  options.fsync_journal = false;
  return options;
}

// Deterministic feed shared by every end-to-end test.
std::vector<stream::StreamSample> FeedSamples(int64_t n, uint64_t seed = 7) {
  auto bundle =
      std::move(stream::MakeStreamBundle("SynthCifar10|label_noise:p=0.1",
                                         seed))
          .ValueOrDie();
  return bundle.source->NextBatch(n);
}

TEST(LearnServeDaemon, IngestTrainSwapServe) {
  LearnServeDaemon daemon(TinyOptions(TestDir("daemon_e2e")));
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(daemon.input_dim(), 192);

  const uint64_t first_snapshot =
      daemon.handle()->registry()->Current()->id();
  std::vector<stream::StreamSample> samples = FeedSamples(16);
  for (size_t i = 0; i < samples.size(); ++i) {
    serve::IngestResult result =
        daemon.Ingest(samples[i].observed_label, samples[i].features);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.seq, i + 1);
  }
  ASSERT_TRUE(daemon.WaitForCycles(2, /*timeout_ms=*/30000));

  std::vector<DaemonCycleResult> cycles = daemon.cycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].cause, "count");
  EXPECT_EQ(cycles[0].samples, 8);
  EXPECT_EQ(cycles[0].micro_batches, 2);
  EXPECT_EQ(cycles[1].total_samples, 16);
  EXPECT_EQ(daemon.consumed(), 16);
  EXPECT_EQ(daemon.pending(), 0);

  // Each cycle hot-swapped a fresh checkpoint under the serve path.
  serve::SnapshotHandle current = daemon.handle()->registry()->Current();
  EXPECT_GT(current->id(), first_snapshot);
  EXPECT_EQ(current->input_dim(), 192);
  serve::EmbedResult embed = daemon.handle()->Embed(samples[0].features);
  ASSERT_TRUE(embed.status.ok()) << embed.status.ToString();
  EXPECT_EQ(embed.snapshot_id, current->id());
  serve::EmbedResult knn = daemon.handle()->KnnLabel(samples[0].features);
  ASSERT_TRUE(knn.status.ok()) << knn.status.ToString();
  EXPECT_GE(knn.label, 0);  // the swapped snapshot carries the replay bank
  daemon.Stop();
}

TEST(LearnServeDaemon, RejectsWrongDimensionInProcess) {
  LearnServeDaemon daemon(TinyOptions(TestDir("daemon_dim")));
  ASSERT_TRUE(daemon.Start().ok());
  serve::IngestResult result = daemon.Ingest(0, std::vector<float>(3, 0.f));
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(daemon.pending(), 0);
  daemon.Stop();
}

TEST(LearnServeDaemon, StartRejectsCheckpointSpecMismatch) {
  const std::string dir = TestDir("daemon_spec");
  {
    LearnServeDaemon daemon(TinyOptions(dir));
    ASSERT_TRUE(daemon.Start().ok());
    daemon.Stop();
  }
  DaemonOptions changed = TinyOptions(dir);
  changed.trigger_spec = "count:n=16";
  LearnServeDaemon daemon(changed);
  util::Status status = daemon.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("trigger"), std::string::npos);
}

TEST(LearnServeDaemon, ResumeAfterAbandonedCycleIsBitIdentical) {
  const std::string straight_dir = TestDir("daemon_straight");
  const std::string killed_dir = TestDir("daemon_killed");
  std::vector<stream::StreamSample> samples = FeedSamples(32);

  // Reference: one process consumes all 32 samples (4 cycles of 8).
  {
    LearnServeDaemon daemon(TinyOptions(straight_dir));
    ASSERT_TRUE(daemon.Start().ok());
    for (const stream::StreamSample& sample : samples) {
      ASSERT_TRUE(
          daemon.Ingest(sample.observed_label, sample.features).status.ok());
    }
    ASSERT_TRUE(daemon.WaitForCycles(4, 30000));
    daemon.Stop();
  }

  // Interrupted: the first process stops mid-stream with a cycle open
  // (Stop abandons it exactly as a kill would — the journal keeps the
  // samples); the second process re-runs it from the boundary.
  {
    LearnServeDaemon daemon(TinyOptions(killed_dir));
    ASSERT_TRUE(daemon.Start().ok());
    for (int64_t i = 0; i < 20; ++i) {  // 2.5 cycles
      ASSERT_TRUE(daemon.Ingest(samples[i].observed_label,
                                samples[i].features)
                      .status.ok());
    }
    ASSERT_TRUE(daemon.WaitForCycles(2, 30000));
    daemon.Stop();
  }
  {
    LearnServeDaemon daemon(TinyOptions(killed_dir));
    ASSERT_TRUE(daemon.Start().ok());
    EXPECT_EQ(daemon.cycles_completed(), 2);
    EXPECT_EQ(daemon.consumed(), 16);
    // The journaled tail (4 samples) was re-queued; the cycle thread may
    // already have pulled it into an open cycle, so pending is 4 or 0.
    EXPECT_LE(daemon.pending(), 4);
    for (int64_t i = 20; i < 32; ++i) {
      ASSERT_TRUE(daemon.Ingest(samples[i].observed_label,
                                samples[i].features)
                      .status.ok());
    }
    ASSERT_TRUE(daemon.WaitForCycles(4, 30000));
    daemon.Stop();
  }

  // Checkpoints, journals, and perf-stripped telemetry all match exactly.
  EXPECT_EQ(ReadFile(straight_dir + "/daemon.ckpt"),
            ReadFile(killed_dir + "/daemon.ckpt"));
  EXPECT_EQ(ReadFile(straight_dir + "/ingest.journal"),
            ReadFile(killed_dir + "/ingest.journal"));
  auto stripped = [](const std::string& path) {
    std::string out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      out += line.substr(0, line.find(",\"perf\"")) + "\n";
    }
    return out;
  };
  const std::string straight = stripped(straight_dir + "/daemon.jsonl");
  EXPECT_EQ(straight, stripped(killed_dir + "/daemon.jsonl"));
  EXPECT_EQ(std::count(straight.begin(), straight.end(), '\n'), 4);
}

// ---- kIngest over TCP ----------------------------------------------------

TEST(DaemonTcp, IngestDimMismatchIsTypedError) {
  LearnServeDaemon daemon(TinyOptions(TestDir("daemon_tcp_dim")));
  ASSERT_TRUE(daemon.Start().ok());
  serve::TcpServer server(daemon.handle());
  server.SetIngestHandler(daemon.MakeIngestHandler());
  ASSERT_TRUE(server.Start(0).ok());
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  serve::ServeClient::IngestReply bad =
      client.Ingest(1, std::vector<float>(5, 0.f));
  ASSERT_FALSE(bad.status.ok());
  EXPECT_EQ(bad.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status.ToString().find("dim"), std::string::npos);

  // The connection survives a typed error, and a correct frame lands.
  serve::ServeClient::IngestReply good =
      client.Ingest(1, std::vector<float>(192, 0.25f));
  ASSERT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_EQ(good.seq, 1u);
  EXPECT_EQ(good.pending, 1);

  server.Stop();
  daemon.Stop();
}

TEST(DaemonTcp, IngestWithoutHandlerIsNotImplemented) {
  serve::ServeOptions options;
  ssl::EncoderConfig encoder_config;
  encoder_config.mlp_dims = {12, 8, 8};
  encoder_config.projector_hidden = 8;
  encoder_config.representation_dim = 4;
  options.load.encoder = encoder_config;
  serve::ServeHandle handle(options);
  {
    util::Rng rng(1);
    handle.InstallSnapshot(ssl::Encoder::Make(encoder_config, &rng), {}, {},
                           "no-ingest");
  }
  serve::TcpServer server(&handle);
  ASSERT_TRUE(server.Start(0).ok());
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  serve::ServeClient::IngestReply reply =
      client.Ingest(0, std::vector<float>(12, 0.f));
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), util::StatusCode::kNotImplemented);
  server.Stop();
}

// ---- concurrent train + serve -------------------------------------------

TEST(DaemonTcp, ConcurrentTrainServeNoDroppedRequests) {
  LearnServeDaemon daemon(TinyOptions(TestDir("daemon_stress")));
  ASSERT_TRUE(daemon.Start().ok());
  serve::TcpServer server(daemon.handle());
  server.SetIngestHandler(daemon.MakeIngestHandler());
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  // 4 client threads embed while the feed drives training cycles and
  // hot-swaps underneath them. Every single request must succeed — a
  // snapshot swap may change WHICH snapshot answers, never WHETHER.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::atomic<int> ok{0};
  std::atomic<int> metrics_ok{0};
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([t, port, &ok, &metrics_ok, &errors] {
      serve::ServeClient client;
      util::Status connected = client.Connect(port);
      if (!connected.ok()) {
        errors[t] = connected.ToString();
        return;
      }
      util::Rng rng(100 + t);
      for (int r = 0; r < kPerThread; ++r) {
        std::vector<float> input(192);
        for (float& v : input) v = rng.Uniform(-1.0f, 1.0f);
        serve::EmbedResult result = client.Embed(input);
        if (!result.status.ok()) {
          errors[t] = result.status.ToString();
          return;
        }
        ok.fetch_add(1);
        if (r % 16 == 0) {
          // kMetrics mid-swap: the JSON must come back whole, never torn.
          util::Result<std::string> body = client.Metrics();
          if (!body.ok()) {
            errors[t] = body.status().ToString();
            return;
          }
          const std::string& json = *body;
          if (json.empty() || json.front() != '{' || json.back() != '}') {
            errors[t] = "torn metrics body: " + json;
            return;
          }
          metrics_ok.fetch_add(1);
        }
      }
    });
  }

  std::vector<stream::StreamSample> samples = FeedSamples(32);
  for (const stream::StreamSample& sample : samples) {
    ASSERT_TRUE(
        daemon.Ingest(sample.observed_label, sample.features).status.ok());
  }
  ASSERT_TRUE(daemon.WaitForCycles(4, 60000));
  for (std::thread& thread : clients) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], "") << "client " << t;
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_GT(metrics_ok.load(), 0);
  EXPECT_EQ(daemon.cycles_completed(), 4);
  EXPECT_GE(daemon.handle()->registry()->swaps(), 4);

  server.Stop();
  daemon.Stop();
}

}  // namespace
}  // namespace edsr::daemon
