// Tests for Conv2d / pooling, including gradient checks and a naive
// convolution reference.
#include "src/tensor/conv.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using tensor::Conv2dSpec;
using tensor::Shape;
using tensor::Tensor;

// Naive direct convolution for cross-checking the im2col implementation.
std::vector<float> NaiveConv(const std::vector<float>& input,
                             const std::vector<float>& weight,
                             const std::vector<float>& bias, int64_t n,
                             int64_t c, int64_t h, int64_t w, int64_t o,
                             int64_t k, int64_t stride, int64_t pad) {
  int64_t oh = (h + 2 * pad - k) / stride + 1;
  int64_t ow = (w + 2 * pad - k) / stride + 1;
  std::vector<float> out(n * o * oh * ow, 0.0f);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oc = 0; oc < o; ++oc) {
      for (int64_t oi = 0; oi < oh; ++oi) {
        for (int64_t oj = 0; oj < ow; ++oj) {
          float acc = bias.empty() ? 0.0f : bias[oc];
          for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ki = 0; ki < k; ++ki) {
              for (int64_t kj = 0; kj < k; ++kj) {
                int64_t ii = oi * stride + ki - pad;
                int64_t jj = oj * stride + kj - pad;
                if (ii < 0 || ii >= h || jj < 0 || jj >= w) continue;
                acc += input[((b * c + ic) * h + ii) * w + jj] *
                       weight[((oc * c + ic) * k + ki) * k + kj];
              }
            }
          }
          out[((b * o + oc) * oh + oi) * ow + oj] = acc;
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  int64_t n, c, h, w, o, k, stride, pad;
};

class ConvForwardTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForwardTest, MatchesNaiveReference) {
  ConvCase p = GetParam();
  util::Rng rng(42);
  Tensor input = Tensor::Randn({p.n, p.c, p.h, p.w}, &rng);
  Tensor weight = Tensor::Randn({p.o, p.c, p.k, p.k}, &rng);
  Tensor bias = Tensor::Randn({p.o}, &rng);
  Tensor out = Conv2d(input, weight, bias, {p.stride, p.pad});
  std::vector<float> ref =
      NaiveConv(input.data(), weight.data(), bias.data(), p.n, p.c, p.h, p.w,
                p.o, p.k, p.stride, p.pad);
  ASSERT_EQ(out.numel(), static_cast<int64_t>(ref.size()));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.at(i), ref[i], 1e-4f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvForwardTest,
    ::testing::Values(ConvCase{1, 1, 4, 4, 1, 3, 1, 0},
                      ConvCase{2, 3, 6, 6, 4, 3, 1, 1},
                      ConvCase{1, 2, 8, 8, 3, 3, 2, 1},
                      ConvCase{2, 2, 5, 5, 2, 1, 1, 0},
                      ConvCase{1, 3, 7, 5, 2, 3, 2, 1}));

TEST(Conv2d, NoBias) {
  util::Rng rng(1);
  Tensor input = Tensor::Randn({1, 2, 4, 4}, &rng);
  Tensor weight = Tensor::Randn({2, 2, 3, 3}, &rng);
  Tensor out = Conv2d(input, weight, Tensor(), {1, 1});
  EXPECT_EQ(out.shape(), (Shape{1, 2, 4, 4}));
}

TEST(Conv2d, GradCheckAllInputs) {
  util::Rng rng(2);
  Tensor input = Tensor::Randn({2, 2, 5, 5}, &rng, 0.0f, 1.0f, true);
  Tensor weight = Tensor::Randn({3, 2, 3, 3}, &rng, 0.0f, 0.5f, true);
  Tensor bias = Tensor::Randn({3}, &rng, 0.0f, 0.5f, true);
  testing::ExpectGradientsMatch(
      [&] {
        return tensor::SumAll(
            tensor::Square(Conv2d(input, weight, bias, {2, 1})));
      },
      {input, weight, bias});
}

TEST(Conv2d, ShapeMismatchDies) {
  Tensor input = Tensor::Zeros({1, 3, 4, 4});
  Tensor weight = Tensor::Zeros({2, 2, 3, 3});  // wrong channel count
  EXPECT_DEATH(Conv2d(input, weight, Tensor(), {1, 1}), "channel");
}

TEST(MaxPool2d, ForwardValues) {
  Tensor input = Tensor::FromVector(
      {1, 2, 5, 6,
       3, 4, 7, 8,
       9, 10, 13, 14,
       11, 12, 15, 16},
      {1, 1, 4, 4});
  Tensor out = MaxPool2d(input, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0), 4.0f);
  EXPECT_EQ(out.at(1), 8.0f);
  EXPECT_EQ(out.at(2), 12.0f);
  EXPECT_EQ(out.at(3), 16.0f);
}

TEST(MaxPool2d, GradFlowsToArgmaxOnly) {
  Tensor input = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 2, 2}, true);
  Tensor loss = tensor::SumAll(MaxPool2d(input, 2));
  loss.Backward();
  EXPECT_FLOAT_EQ(input.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(input.grad()[3], 1.0f);
}

TEST(MaxPool2d, GradCheck) {
  util::Rng rng(3);
  Tensor input = Tensor::Randn({2, 2, 4, 4}, &rng, 0.0f, 1.0f, true);
  testing::ExpectGradientsMatch(
      [&] { return tensor::SumAll(tensor::Square(MaxPool2d(input, 2))); },
      {input});
}

TEST(GlobalAvgPool2d, ForwardAndGrad) {
  Tensor input = Tensor::FromVector({1, 2, 3, 4, 10, 20, 30, 40},
                                    {1, 2, 2, 2}, true);
  Tensor out = GlobalAvgPool2d(input);
  EXPECT_EQ(out.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(1), 25.0f);
  tensor::SumAll(out).Backward();
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(input.grad()[i], 0.25f);
}

TEST(Im2Col, RoundTripAdjoint) {
  // <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property.
  util::Rng rng(4);
  int64_t c = 2, h = 5, w = 4, k = 3, stride = 1, pad = 1;
  int64_t oh = (h + 2 * pad - k) / stride + 1;
  int64_t ow = (w + 2 * pad - k) / stride + 1;
  std::vector<float> x(c * h * w), y(c * k * k * oh * ow);
  for (float& v : x) v = rng.Normal();
  for (float& v : y) v = rng.Normal();
  std::vector<float> cols(y.size());
  tensor::Im2Col(x.data(), c, h, w, k, stride, pad, cols.data());
  std::vector<float> img(x.size(), 0.0f);
  tensor::Col2Im(y.data(), c, h, w, k, stride, pad, img.data());
  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (size_t i = 0; i < x.size(); ++i) rhs += x[i] * img[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace edsr
