// Cross-module integration and property tests:
//  * autograd fuzz — random expression trees checked against finite
//    differences;
//  * end-to-end determinism — same seed, same accuracy matrix;
//  * conv-backbone and BarlowTwins variants of the continual loop.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/cl/factory.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"
#include "src/tensor/ops.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using tensor::Tensor;

// ---- Autograd fuzz -----------------------------------------------------

// Builds a random differentiable expression from the given leaves. All ops
// are chosen to be smooth and bounded away from singularities for the
// leaves' value range (positive, O(1)).
Tensor RandomExpression(const std::vector<Tensor>& leaves, util::Rng* rng,
                        int depth) {
  if (depth == 0) {
    return leaves[rng->UniformInt(0, static_cast<int64_t>(leaves.size()) - 1)];
  }
  int op = static_cast<int>(rng->UniformInt(0, 6));
  Tensor a = RandomExpression(leaves, rng, depth - 1);
  switch (op) {
    case 0:
      return a + RandomExpression(leaves, rng, depth - 1);
    case 1:
      return a * RandomExpression(leaves, rng, depth - 1);
    case 2:
      return a - RandomExpression(leaves, rng, depth - 1) * 0.5f;
    case 3:
      return tensor::Tanh(a);
    case 4:
      return tensor::Sigmoid(a);
    case 5:
      return tensor::Exp(a * 0.3f);
    default:
      return tensor::Log(tensor::Square(a) + 1.5f);
  }
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomGraphMatchesFiniteDifferences) {
  util::Rng rng(GetParam() * 7 + 1);
  std::vector<Tensor> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(Tensor::Rand({2, 3}, &rng, 0.3f, 1.2f, true));
  }
  // The expression structure must be fixed across loss_fn invocations, so
  // pre-build a deterministic builder seeded per test case.
  uint64_t structure_seed = GetParam() * 13 + 5;
  auto loss_fn = [&]() {
    util::Rng structure_rng(structure_seed);
    return tensor::MeanAll(RandomExpression(leaves, &structure_rng, 3));
  };
  testing::ExpectGradientsMatch(loss_fn, leaves, 1e-2f, 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(Graphs, AutogradFuzzTest, ::testing::Range(0, 15));

// ---- End-to-end determinism -----------------------------------------------

data::TaskSequence SmallSequence(uint64_t seed) {
  data::SyntheticImageConfig config;
  config.name = "integration";
  config.num_classes = 4;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 1.5f;
  config.seed = seed;
  auto pair = MakeSyntheticImageData(config);
  return data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);
}

cl::StrategyContext SmallContext(uint64_t seed) {
  cl::StrategyContext context;
  context.encoder.mlp_dims = {48, 24, 24};
  context.encoder.projector_hidden = 24;
  context.encoder.representation_dim = 12;
  context.epochs = 3;
  context.batch_size = 16;
  context.memory_per_task = 6;
  context.replay_batch_size = 6;
  context.seed = seed;
  return context;
}

TEST(Determinism, SameSeedSameAccuracyMatrix) {
  data::TaskSequence seq = SmallSequence(50);
  auto run = [&]() {
    auto strategy = cl::MakeStrategy("edsr", SmallContext(3));
    return cl::RunContinual(strategy.get(), seq, {});
  };
  cl::ContinualRunResult a = run();
  cl::ContinualRunResult b = run();
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      EXPECT_DOUBLE_EQ(a.matrix.Get(i, j), b.matrix.Get(i, j));
    }
  }
}

TEST(Determinism, DifferentSeedsDifferentWeights) {
  // Coarse accuracies can coincide across seeds; trained weights cannot
  // (different init + batch order), so compare those instead.
  data::TaskSequence seq = SmallSequence(51);
  auto run = [&](uint64_t seed) {
    auto strategy = cl::MakeStrategy("edsr", SmallContext(seed));
    cl::RunContinual(strategy.get(), seq, {});
    return strategy->encoder()->Parameters().front().data();
  };
  EXPECT_NE(run(1), run(2));
}

// ---- Backbone / loss variants through the full loop -------------------------

TEST(Variants, ConvBackboneContinualRun) {
  data::SyntheticImageConfig config;
  config.name = "conv";
  config.num_classes = 4;
  config.train_per_class = 12;
  config.test_per_class = 6;
  config.geometry = {3, 8, 8};
  config.latent_dim = 6;
  config.class_separation = 2.0f;
  config.seed = 52;
  auto pair = MakeSyntheticImageData(config);
  auto seq =
      data::TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);

  cl::StrategyContext context;
  context.encoder.backbone = ssl::EncoderConfig::BackboneType::kConv;
  context.encoder.conv = {3, 8, 8, 4};
  context.encoder.projector_hidden = 16;
  context.encoder.representation_dim = 8;
  context.epochs = 2;
  context.batch_size = 12;
  context.memory_per_task = 4;
  context.replay_batch_size = 4;
  context.seed = 53;

  auto strategy = cl::MakeStrategy("edsr", context);
  cl::ContinualRunResult result = cl::RunContinual(strategy.get(), seq, {});
  EXPECT_TRUE(result.matrix.IsSet(1, 1));
  EXPECT_GE(result.matrix.FinalAcc(), 0.25);
}

TEST(Variants, BarlowTwinsContinualRun) {
  data::TaskSequence seq = SmallSequence(54);
  cl::StrategyContext context = SmallContext(55);
  context.loss_kind = ssl::CsslLossKind::kBarlowTwins;
  for (const char* method : {"finetune", "cassle", "edsr"}) {
    auto strategy = cl::MakeStrategy(method, context);
    cl::ContinualRunResult result = cl::RunContinual(strategy.get(), seq, {});
    EXPECT_GE(result.matrix.FinalAcc(), 0.25) << method;
  }
}

TEST(Variants, AdamOptimizerContinualRun) {
  data::TaskSequence seq = SmallSequence(56);
  cl::StrategyContext context = SmallContext(57);
  context.use_adam = true;
  auto strategy = cl::MakeStrategy("edsr", context);
  cl::ContinualRunResult result = cl::RunContinual(strategy.get(), seq, {});
  EXPECT_GE(result.matrix.FinalAcc(), 0.25);
}

}  // namespace
}  // namespace edsr
