// Tests for image and tabular augmentations.
#include "src/augment/image_augment.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/augment/tabular_augment.h"
#include "src/augment/view_provider.h"
#include "src/data/synthetic.h"

namespace edsr {
namespace {

using augment::ImagePipeline;
using data::ImageGeometry;

std::vector<float> RampImage(const ImageGeometry& g) {
  std::vector<float> image(g.Pixels());
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<float>(i) / image.size();
  }
  return image;
}

TEST(HorizontalFlip, ReversesRowsWhenTriggered) {
  ImageGeometry g{1, 2, 3};
  std::vector<float> image = {1, 2, 3, 4, 5, 6};
  augment::HorizontalFlip flip(1.0f);  // always
  util::Rng rng(0);
  flip.Apply(image.data(), g, &rng);
  EXPECT_EQ(image, (std::vector<float>{3, 2, 1, 6, 5, 4}));
}

TEST(HorizontalFlip, IsInvolution) {
  ImageGeometry g{2, 4, 4};
  std::vector<float> image = RampImage(g);
  std::vector<float> original = image;
  augment::HorizontalFlip flip(1.0f);
  util::Rng rng(0);
  flip.Apply(image.data(), g, &rng);
  flip.Apply(image.data(), g, &rng);
  EXPECT_EQ(image, original);
}

TEST(RandomCrop, PreservesShapeAndShifts) {
  ImageGeometry g{1, 4, 4};
  std::vector<float> image = RampImage(g);
  std::vector<float> original = image;
  augment::RandomCrop crop(1);
  util::Rng rng(3);
  crop.Apply(image.data(), g, &rng);
  EXPECT_EQ(image.size(), original.size());
  // Values must come from the original image or zero padding.
  for (float v : image) {
    bool from_original =
        std::find(original.begin(), original.end(), v) != original.end();
    EXPECT_TRUE(from_original || v == 0.0f);
  }
}

TEST(RandomGrayscale, EqualizesChannels) {
  ImageGeometry g{3, 2, 2};
  std::vector<float> image(12);
  util::Rng rng(1);
  for (float& v : image) v = rng.Uniform();
  augment::RandomGrayscale gray(1.0f);
  gray.Apply(image.data(), g, &rng);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(image[i], image[4 + i]);
    EXPECT_FLOAT_EQ(image[i], image[8 + i]);
  }
}

TEST(GaussianBlur, PreservesMeanAndReducesVariance) {
  ImageGeometry g{1, 8, 8};
  util::Rng rng(2);
  std::vector<float> image(64);
  for (float& v : image) v = rng.Uniform();
  double mean_before = 0.0, var_before = 0.0;
  for (float v : image) mean_before += v;
  mean_before /= 64;
  for (float v : image) var_before += (v - mean_before) * (v - mean_before);
  augment::GaussianBlur blur(1.0f, 1.0f, 1.0f);
  blur.Apply(image.data(), g, &rng);
  double mean_after = 0.0, var_after = 0.0;
  for (float v : image) mean_after += v;
  mean_after /= 64;
  for (float v : image) var_after += (v - mean_after) * (v - mean_after);
  EXPECT_NEAR(mean_after, mean_before, 0.05);
  EXPECT_LT(var_after, var_before);
}

TEST(ColorJitter, StaysInRange) {
  ImageGeometry g{3, 4, 4};
  util::Rng rng(3);
  std::vector<float> image(g.Pixels());
  for (float& v : image) v = rng.Uniform();
  augment::ColorJitter jitter(0.8f, 1.0f);
  jitter.Apply(image.data(), g, &rng);
  for (float v : image) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Cutout, ZeroesASquare) {
  ImageGeometry g{1, 6, 6};
  std::vector<float> image(36, 1.0f);
  augment::Cutout cutout(3, 1.0f);
  util::Rng rng(4);
  cutout.Apply(image.data(), g, &rng);
  int64_t zeros = std::count(image.begin(), image.end(), 0.0f);
  EXPECT_EQ(zeros, 9);
}

TEST(ImagePipeline, TwoViewsDiffer) {
  data::SyntheticImageConfig config;
  config.num_classes = 2;
  config.train_per_class = 4;
  config.test_per_class = 2;
  config.geometry = {3, 4, 4};
  config.latent_dim = 4;
  config.seed = 5;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  ImagePipeline pipeline = ImagePipeline::SimSiamDefault();
  util::Rng rng(6);
  tensor::Tensor v1 = AugmentView(pair.train, {0, 1, 2}, pipeline, &rng);
  tensor::Tensor v2 = AugmentView(pair.train, {0, 1, 2}, pipeline, &rng);
  EXPECT_EQ(v1.shape(), v2.shape());
  EXPECT_NE(v1.data(), v2.data());
}

TEST(ImagePipeline, DeterministicGivenSeed) {
  data::SyntheticImageConfig config;
  config.num_classes = 2;
  config.train_per_class = 3;
  config.geometry = {3, 4, 4};
  config.latent_dim = 4;
  config.seed = 7;
  data::SyntheticImagePair pair = MakeSyntheticImageData(config);
  ImagePipeline pipeline = ImagePipeline::SimSiamDefault();
  util::Rng rng_a(42), rng_b(42);
  tensor::Tensor va = AugmentView(pair.train, {0, 1}, pipeline, &rng_a);
  tensor::Tensor vb = AugmentView(pair.train, {0, 1}, pipeline, &rng_b);
  EXPECT_EQ(va.data(), vb.data());
}

TEST(TabularCorruption, RateZeroIsIdentity) {
  data::SyntheticTabularConfig config;
  config.seed = 8;
  data::SyntheticTabularPair pair = MakeSyntheticTabularData(config);
  augment::TabularCorruption corruption(0.0f);
  util::Rng rng(9);
  tensor::Tensor view = corruption.AugmentView(pair.train, {0, 1}, &rng);
  for (int64_t j = 0; j < pair.train.dim(); ++j) {
    EXPECT_FLOAT_EQ(view.at(0, j), pair.train.Row(0)[j]);
  }
}

TEST(TabularCorruption, ValuesComeFromMarginals) {
  // With rate 1, every feature is replaced by some value observed for that
  // feature elsewhere in the dataset.
  data::SyntheticTabularConfig config;
  config.train_size = 50;
  config.seed = 10;
  data::SyntheticTabularPair pair = MakeSyntheticTabularData(config);
  augment::TabularCorruption corruption(1.0f);
  util::Rng rng(11);
  tensor::Tensor view = corruption.AugmentView(pair.train, {3}, &rng);
  for (int64_t j = 0; j < pair.train.dim(); ++j) {
    bool found = false;
    for (int64_t i = 0; i < pair.train.size() && !found; ++i) {
      found = pair.train.Row(i)[j] == view.at(0, j);
    }
    EXPECT_TRUE(found) << "feature " << j << " not from the marginal";
  }
}

TEST(TabularCorruption, PartialRateChangesSomeFeatures) {
  data::SyntheticTabularConfig config;
  config.train_size = 100;
  config.num_features = 40;
  config.seed = 12;
  data::SyntheticTabularPair pair = MakeSyntheticTabularData(config);
  augment::TabularCorruption corruption(0.3f);
  util::Rng rng(13);
  tensor::Tensor view = corruption.AugmentView(pair.train, {0}, &rng);
  int64_t changed = 0;
  for (int64_t j = 0; j < pair.train.dim(); ++j) {
    if (view.at(0, j) != pair.train.Row(0)[j]) ++changed;
  }
  EXPECT_GT(changed, 2);
  EXPECT_LT(changed, 30);
}

TEST(ViewProvider, DispatchesOnModality) {
  data::SyntheticImageConfig img_config;
  img_config.num_classes = 2;
  img_config.train_per_class = 2;
  img_config.geometry = {3, 4, 4};
  img_config.latent_dim = 4;
  img_config.seed = 14;
  auto img = MakeSyntheticImageData(img_config);
  data::SyntheticTabularConfig tab_config;
  tab_config.seed = 15;
  auto tab = MakeSyntheticTabularData(tab_config);

  auto img_provider = augment::ViewProvider::ForDataset(img.train);
  auto tab_provider = augment::ViewProvider::ForDataset(tab.train);
  util::Rng rng(16);
  EXPECT_EQ(img_provider->View(img.train, {0}, &rng).shape()[1],
            img.train.dim());
  EXPECT_EQ(tab_provider->View(tab.train, {0}, &rng).shape()[1],
            tab.train.dim());
}

}  // namespace
}  // namespace edsr
