// Finite-difference gradient checks covering every public differentiable op
// in ops.h and conv.h. tensor_test.cc exercises op semantics; this file is
// the systematic derivative audit (satellite of the kernels refactor, which
// rewrote every backward closure).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/conv.h"
#include "src/tensor/ops.h"
#include "tests/testing_util.h"

namespace edsr {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testing::ExpectGradientsMatch;
using testing::RandomTensor;

// Reduces `t` to a scalar through fixed random weights so every output
// element influences the loss (SumAll alone hides sign errors that cancel).
Tensor WeightedSum(const Tensor& t, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> w(t.numel());
  for (float& v : w) v = rng.Uniform(0.5f, 1.5f);
  return tensor::SumAll(t * Tensor::FromVector(std::move(w), t.shape()));
}

// ---- Binary arithmetic ----------------------------------------------------

TEST(Gradcheck, AddSubMulSameShape) {
  util::Rng rng(1);
  Tensor a = RandomTensor({2, 3}, &rng);
  Tensor b = RandomTensor({2, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(a + b, 10); }, {a, b});
  ExpectGradientsMatch([&] { return WeightedSum(a - b, 11); }, {a, b});
  ExpectGradientsMatch([&] { return WeightedSum(a * b, 12); }, {a, b});
}

TEST(Gradcheck, DivSameShapeAndBroadcast) {
  util::Rng rng(2);
  Tensor a = RandomTensor({2, 3}, &rng);
  // Denominator bounded away from zero.
  Tensor b = RandomTensor({2, 3}, &rng, /*margin=*/0.5f);
  ExpectGradientsMatch([&] { return WeightedSum(a / b, 13); }, {a, b});
  Tensor col = RandomTensor({2, 1}, &rng, /*margin=*/0.5f);
  ExpectGradientsMatch([&] { return WeightedSum(a / col, 14); }, {a, col});
}

TEST(Gradcheck, BroadcastRowColScalar) {
  util::Rng rng(3);
  Tensor a = RandomTensor({3, 4}, &rng);
  Tensor row = RandomTensor({1, 4}, &rng);
  Tensor col = RandomTensor({3, 1}, &rng);
  Tensor scalar = RandomTensor({1}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(a + row, 15); }, {a, row});
  ExpectGradientsMatch([&] { return WeightedSum(a * col, 16); }, {a, col});
  ExpectGradientsMatch([&] { return WeightedSum(a * scalar, 17); },
                       {a, scalar});
}

TEST(Gradcheck, ScalarOperators) {
  util::Rng rng(4);
  Tensor a = RandomTensor({2, 3}, &rng, /*margin=*/0.5f);
  ExpectGradientsMatch([&] { return WeightedSum(a + 0.7f, 18); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(a - 0.7f, 19); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(a * 1.3f, 20); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(a / 1.3f, 21); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(2.0f * a, 22); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(0.5f + a, 23); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(-a, 24); }, {a});
}

// ---- Unary ----------------------------------------------------------------

TEST(Gradcheck, NegReluAbsLeakyRelu) {
  util::Rng rng(5);
  // Margin keeps inputs away from the kink at 0 (finite differences would
  // straddle it otherwise).
  Tensor a = RandomTensor({2, 5}, &rng, /*margin=*/0.3f);
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Neg(a), 30); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Relu(a), 31); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Abs(a), 32); }, {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::LeakyRelu(a, 0.1f), 33); }, {a});
}

TEST(Gradcheck, ExpLogSqrt) {
  util::Rng rng(6);
  Tensor a = RandomTensor({2, 4}, &rng);
  Tensor pos = RandomTensor({2, 4}, &rng, /*margin=*/0.5f, /*span=*/1.0f,
                            /*signed_values=*/false);
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Exp(a), 34); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Log(pos), 35); },
                       {pos});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Sqrt(pos), 36); },
                       {pos});
}

TEST(Gradcheck, TanhSigmoidGelu) {
  util::Rng rng(7);
  Tensor a = RandomTensor({3, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Tanh(a), 37); }, {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Sigmoid(a), 38); },
                       {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Gelu(a), 39); }, {a});
}

TEST(Gradcheck, PowScalarSquare) {
  util::Rng rng(8);
  Tensor pos = RandomTensor({2, 3}, &rng, /*margin=*/0.4f, /*span=*/1.0f,
                            /*signed_values=*/false);
  Tensor a = RandomTensor({2, 3}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::PowScalar(pos, 1.7f), 40); }, {pos});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Square(a), 41); },
                       {a});
}

TEST(Gradcheck, Clamp) {
  util::Rng rng(9);
  // |values| in [0.2, 1.2]; bounds at ±0.9 so some elements saturate (zero
  // grad) and some pass through (unit grad), none near the boundary kink.
  Tensor a = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Clamp(a, -0.9f, 0.9f), 42); }, {a});
}

TEST(Gradcheck, DropoutWithFixedMask) {
  util::Rng data_rng(10);
  Tensor a = RandomTensor({4, 4}, &data_rng);
  // Reseeding inside loss_fn fixes the mask across repeated forward passes,
  // which gradcheck requires.
  auto loss_fn = [&] {
    util::Rng mask_rng(123);
    return WeightedSum(tensor::Dropout(a, 0.3f, &mask_rng), 43);
  };
  ExpectGradientsMatch(loss_fn, {a});
}

// ---- Linear algebra and shape ops ----------------------------------------

TEST(Gradcheck, MatMulTranspose) {
  util::Rng rng(11);
  Tensor a = RandomTensor({3, 4}, &rng);
  Tensor b = RandomTensor({4, 2}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(tensor::MatMul(a, b), 50); },
                       {a, b});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Transpose(a), 51); },
                       {a});
}

TEST(Gradcheck, ReshapeNarrow) {
  util::Rng rng(12);
  Tensor a = RandomTensor({2, 6}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Reshape(a, {3, 4}), 52); }, {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Reshape(a, {4, -1}), 53); }, {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Narrow(a, 1, 2, 3), 54); }, {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Narrow(a, 0, 1, 1), 55); }, {a});
}

TEST(Gradcheck, IndexSelectRowsWithDuplicates) {
  util::Rng rng(13);
  Tensor a = RandomTensor({4, 3}, &rng);
  // Row 2 twice: grads must scatter-add.
  std::vector<int64_t> picks = {2, 0, 2, 3};
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::IndexSelectRows(a, picks), 56); },
      {a});
}

TEST(Gradcheck, ConcatRows) {
  util::Rng rng(14);
  Tensor a = RandomTensor({2, 3}, &rng);
  Tensor b = RandomTensor({1, 3}, &rng);
  Tensor c = RandomTensor({3, 3}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::ConcatRows({a, b, c}), 57); },
      {a, b, c});
}

// ---- Reductions -----------------------------------------------------------

TEST(Gradcheck, SumMeanAll) {
  util::Rng rng(15);
  Tensor a = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch([&] { return tensor::SumAll(a); }, {a});
  ExpectGradientsMatch([&] { return tensor::MeanAll(a); }, {a});
}

TEST(Gradcheck, SumMeanAxis) {
  util::Rng rng(16);
  Tensor a = RandomTensor({2, 3, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Sum(a, 1), 60); },
                       {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::Sum(a, 2, /*keepdims=*/true), 61); },
      {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Mean(a, 0), 62); },
                       {a});
  ExpectGradientsMatch([&] { return WeightedSum(tensor::Mean(a, -1), 63); },
                       {a});
}

TEST(Gradcheck, ReduceMaxMin) {
  util::Rng rng(17);
  // Random draws are distinct with margin >> eps, so the argmax is stable
  // under the finite-difference perturbation.
  Tensor a = RandomTensor({3, 5}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::ReduceMax(a, 1), 64); }, {a});
  ExpectGradientsMatch(
      [&] {
        return WeightedSum(tensor::ReduceMax(a, 0, /*keepdims=*/true), 65);
      },
      {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::ReduceMin(a, 1), 66); }, {a});
}

// ---- Composites -----------------------------------------------------------

TEST(Gradcheck, L2NormalizeAndCosine) {
  util::Rng rng(18);
  Tensor a = RandomTensor({3, 4}, &rng);
  Tensor b = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::L2NormalizeRows(a), 70); }, {a});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::CosineSimilarityRows(a, b), 71); },
      {a, b});
}

TEST(Gradcheck, SoftmaxAndCrossEntropy) {
  util::Rng rng(19);
  Tensor logits = RandomTensor({4, 3}, &rng);
  std::vector<int64_t> labels = {0, 2, 1, 2};
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::SoftmaxRows(logits), 72); }, {logits});
  ExpectGradientsMatch(
      [&] { return tensor::CrossEntropyWithLogits(logits, labels); },
      {logits});
}

// ---- Convolution ----------------------------------------------------------

TEST(Gradcheck, Conv2dWithBias) {
  util::Rng rng(20);
  Tensor input = RandomTensor({2, 2, 5, 5}, &rng);
  Tensor weight = RandomTensor({3, 2, 3, 3}, &rng);
  Tensor bias = RandomTensor({3}, &rng);
  tensor::Conv2dSpec spec;
  spec.stride = 2;
  spec.padding = 1;
  ExpectGradientsMatch(
      [&] {
        return WeightedSum(tensor::Conv2d(input, weight, bias, spec), 80);
      },
      {input, weight, bias});
}

TEST(Gradcheck, Conv2dNoBias) {
  util::Rng rng(21);
  Tensor input = RandomTensor({1, 2, 4, 4}, &rng);
  Tensor weight = RandomTensor({2, 2, 2, 2}, &rng);
  tensor::Conv2dSpec spec;  // stride 1, no padding
  ExpectGradientsMatch(
      [&] {
        return WeightedSum(tensor::Conv2d(input, weight, Tensor(), spec), 81);
      },
      {input, weight});
}

TEST(Gradcheck, MaxPool2dAndGlobalAvgPool) {
  util::Rng rng(22);
  Tensor input = RandomTensor({2, 2, 4, 4}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::MaxPool2d(input, 2), 82); }, {input});
  ExpectGradientsMatch(
      [&] { return WeightedSum(tensor::GlobalAvgPool2d(input), 83); },
      {input});
}

}  // namespace
}  // namespace edsr
