// Run-level checkpoint/resume tests: strategy SaveTo/LoadFrom round trips
// and the headline guarantee — a run interrupted at an increment boundary
// and resumed from its checkpoint produces the bit-identical accuracy
// matrix, memory contents, and encoder weights of an uninterrupted run.
#include "src/cl/trainer.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cl/si.h"
#include "src/core/edsr.h"
#include "src/data/synthetic.h"
#include "src/obs/run_record.h"

namespace edsr {
namespace {

using cl::CheckpointOptions;
using cl::ContinualRunResult;
using cl::EvalOptions;
using cl::StrategyContext;
using data::TaskSequence;

StrategyContext TinyContext(uint64_t seed = 0) {
  StrategyContext context;
  context.encoder.mlp_dims = {48, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.epochs = 2;
  context.batch_size = 16;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = seed;
  return context;
}

TaskSequence TinySequence(uint64_t seed, int64_t tasks) {
  data::SyntheticImageConfig config;
  config.name = "tiny";
  config.num_classes = 2 * tasks;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 3.5f;
  config.seed = seed;
  auto pair = MakeSyntheticImageData(config);
  return TaskSequence::SplitByClasses(pair.train, pair.test, tasks, nullptr);
}

std::string TestDir(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::vector<float>> StateValues(const nn::Module& module) {
  std::vector<std::vector<float>> values;
  for (const nn::NamedTensor& entry : module.NamedState()) {
    values.push_back(entry.value.data());
  }
  return values;
}

void ExpectSameMatrix(const eval::AccuracyMatrix& actual,
                      const eval::AccuracyMatrix& expected) {
  ASSERT_EQ(actual.num_tasks(), expected.num_tasks());
  for (int64_t i = 0; i < expected.num_tasks(); ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      ASSERT_EQ(actual.IsSet(i, j), expected.IsSet(i, j))
          << "cell (" << i << ", " << j << ")";
      if (!expected.IsSet(i, j)) continue;
      // Bit-for-bit, not approximate: resume must replay the exact
      // trajectory of an uninterrupted run.
      EXPECT_EQ(actual.Get(i, j), expected.Get(i, j))
          << "cell (" << i << ", " << j << ")";
    }
  }
}

void ExpectSameMemory(const cl::MemoryBuffer& actual,
                      const cl::MemoryBuffer& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (int64_t i = 0; i < expected.size(); ++i) {
    const cl::MemoryEntry& x = expected.entry(i);
    const cl::MemoryEntry& y = actual.entry(i);
    EXPECT_EQ(y.features, x.features) << "entry " << i;
    EXPECT_EQ(y.task_id, x.task_id) << "entry " << i;
    EXPECT_EQ(y.source_index, x.source_index) << "entry " << i;
    EXPECT_EQ(y.label, x.label) << "entry " << i;
    EXPECT_EQ(y.noise_scale, x.noise_scale) << "entry " << i;
    EXPECT_EQ(y.stored_output, x.stored_output) << "entry " << i;
    EXPECT_EQ(y.stored_representation, x.stored_representation)
        << "entry " << i;
  }
}

// ---- Strategy SaveTo / LoadFrom ---------------------------------------

TEST(StrategyCheckpoint, SiRoundTripRestoresEverything) {
  TaskSequence sequence = TinySequence(11, 2);
  cl::Si trained(TinyContext(5));
  trained.LearnIncrement(sequence.task(0));

  std::string path = TestDir("si_strategy.ckpt");
  io::ContainerWriter writer(path);
  trained.SaveTo(&writer).Check();
  writer.Finish().Check();

  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  cl::Si restored(TinyContext(5));
  restored.LoadFrom(*reader).Check();

  EXPECT_EQ(restored.increments_seen(), trained.increments_seen());
  EXPECT_EQ(StateValues(*restored.encoder()), StateValues(*trained.encoder()));
  EXPECT_EQ(restored.TotalImportance(), trained.TotalImportance());
  EXPECT_EQ(restored.rng()->SerializeState(), trained.rng()->SerializeState());

  // The restored strategy must *continue* identically, not merely look
  // identical at rest.
  trained.LearnIncrement(sequence.task(1));
  restored.LearnIncrement(sequence.task(1));
  EXPECT_EQ(StateValues(*restored.encoder()), StateValues(*trained.encoder()));
  std::remove(path.c_str());
}

TEST(StrategyCheckpoint, RejectsStrategyKindMismatch) {
  cl::Finetune finetune(TinyContext(1));
  std::string path = TestDir("kind_mismatch.ckpt");
  io::ContainerWriter writer(path);
  finetune.SaveTo(&writer).Check();
  writer.Finish().Check();

  util::Result<io::ContainerReader> reader = io::ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok());
  cl::Si si(TinyContext(1));
  util::Status status = si.LoadFrom(*reader);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---- Exact resume -----------------------------------------------------

TEST(Resume, EdsrResumesBitIdenticalToStraightRun) {
  const int64_t kTasks = 4;
  const EvalOptions eval_options;

  // The uninterrupted reference run.
  TaskSequence straight_seq = TinySequence(21, kTasks);
  core::Edsr straight(TinyContext(9));
  ContinualRunResult reference =
      RunContinual(&straight, straight_seq, eval_options);

  // The same run, killed after increment 2 (index 1) and resumed from the
  // checkpoint by a *fresh* strategy object — i.e. a new process.
  TaskSequence resumed_seq = TinySequence(21, kTasks);
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("edsr_resume");
  {
    core::Edsr interrupted(TinyContext(9));
    CheckpointOptions until_kill = checkpoint;
    until_kill.stop_after_increment = 1;
    RunContinual(&interrupted, resumed_seq, eval_options, until_kill);
  }
  core::Edsr resumed(TinyContext(9));
  ContinualRunResult continued{eval::AccuracyMatrix(kTasks)};
  ResumeContinual(&resumed, resumed_seq, eval_options, checkpoint, &continued)
      .Check();

  ExpectSameMatrix(continued.matrix, reference.matrix);
  ExpectSameMemory(resumed.memory(), straight.memory());
  EXPECT_EQ(StateValues(*resumed.encoder()), StateValues(*straight.encoder()));
  std::remove((checkpoint.directory + "/run.ckpt").c_str());
}

TEST(Resume, StatefulSelectorAndPolicyResumeBitIdentical) {
  // The gradient-affinity selector carries a cross-increment reference
  // gradient and max-loss retrieval ranks by representation drift: both
  // read state through SaveExtra/LoadExtra, so an interrupted run only
  // matches the straight one if that state round-trips exactly.
  const int64_t kTasks = 4;
  const EvalOptions eval_options;
  StrategyContext context = TinyContext(9);
  context.selector_spec = "gradient-affinity";
  context.retrieval_spec = "max-loss";

  TaskSequence straight_seq = TinySequence(21, kTasks);
  core::Edsr straight(context);
  ContinualRunResult reference =
      RunContinual(&straight, straight_seq, eval_options);

  TaskSequence resumed_seq = TinySequence(21, kTasks);
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("edsr_stateful_resume");
  {
    core::Edsr interrupted(context);
    CheckpointOptions until_kill = checkpoint;
    until_kill.stop_after_increment = 1;
    RunContinual(&interrupted, resumed_seq, eval_options, until_kill);
  }
  core::Edsr resumed(context);
  ContinualRunResult continued{eval::AccuracyMatrix(kTasks)};
  ResumeContinual(&resumed, resumed_seq, eval_options, checkpoint, &continued)
      .Check();

  ExpectSameMatrix(continued.matrix, reference.matrix);
  ExpectSameMemory(resumed.memory(), straight.memory());
  EXPECT_EQ(StateValues(*resumed.encoder()), StateValues(*straight.encoder()));
  std::remove((checkpoint.directory + "/run.ckpt").c_str());
}

// Run records minus the volatile "perf" object, which writers append as the
// LAST key precisely so this truncation works (see run_record.h).
std::vector<std::string> DeterministicRecordLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    size_t perf = line.find(",\"perf\"");
    if (perf != std::string::npos) line = line.substr(0, perf) + "}";
    lines.push_back(line);
  }
  return lines;
}

TEST(Resume, RunRecordsConcatenateToTheStraightRunsRecords) {
  const int64_t kTasks = 3;
  const EvalOptions eval_options;

  // Straight run, logging to one file.
  std::string straight_path = TestDir("records_straight.jsonl");
  std::remove(straight_path.c_str());
  TaskSequence straight_seq = TinySequence(33, kTasks);
  core::Edsr straight(TinyContext(7));
  {
    obs::RunLogger logger(straight_path);
    ASSERT_TRUE(logger.ok());
    straight.SetRunLogger(&logger);
    RunContinual(&straight, straight_seq, eval_options);
    straight.SetRunLogger(nullptr);
  }

  // The same run killed after increment 1 and resumed by a fresh process,
  // both halves appending to the same record file.
  std::string resumed_path = TestDir("records_resumed.jsonl");
  std::remove(resumed_path.c_str());
  TaskSequence resumed_seq = TinySequence(33, kTasks);
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("records_resume_ckpt");
  {
    core::Edsr interrupted(TinyContext(7));
    obs::RunLogger logger(resumed_path);
    ASSERT_TRUE(logger.ok());
    interrupted.SetRunLogger(&logger);
    CheckpointOptions until_kill = checkpoint;
    until_kill.stop_after_increment = 0;
    RunContinual(&interrupted, resumed_seq, eval_options, until_kill);
  }
  {
    core::Edsr resumed(TinyContext(7));
    obs::RunLogger logger(resumed_path);
    ASSERT_TRUE(logger.ok());
    resumed.SetRunLogger(&logger);
    ContinualRunResult continued{eval::AccuracyMatrix(kTasks)};
    ResumeContinual(&resumed, resumed_seq, eval_options, checkpoint,
                    &continued)
        .Check();
  }

  // Every deterministic field — losses, selection stats, accuracy cells —
  // must be byte-identical; only "perf" may differ between the runs.
  std::vector<std::string> straight_lines =
      DeterministicRecordLines(straight_path);
  std::vector<std::string> resumed_lines =
      DeterministicRecordLines(resumed_path);
  ASSERT_EQ(straight_lines.size(), resumed_lines.size());
  for (size_t i = 0; i < straight_lines.size(); ++i) {
    EXPECT_EQ(resumed_lines[i], straight_lines[i]) << "record " << i;
  }
  std::remove(straight_path.c_str());
  std::remove(resumed_path.c_str());
  std::remove((checkpoint.directory + "/run.ckpt").c_str());
}

TEST(Resume, MissingCheckpointIsCleanError) {
  TaskSequence sequence = TinySequence(3, 2);
  core::Edsr strategy(TinyContext(3));
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("resume_missing");
  ContinualRunResult result{eval::AccuracyMatrix(2)};
  util::Status status =
      ResumeContinual(&strategy, sequence, EvalOptions{}, checkpoint, &result);
  EXPECT_FALSE(status.ok());
}

TEST(Resume, CorruptCheckpointIsCleanError) {
  TaskSequence sequence = TinySequence(13, 2);
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("resume_corrupt");
  {
    core::Edsr strategy(TinyContext(13));
    CheckpointOptions one = checkpoint;
    one.stop_after_increment = 0;
    RunContinual(&strategy, sequence, EvalOptions{}, one);
  }
  std::string path = checkpoint.directory + "/run.ckpt";
  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  auto expect_unloadable = [&](const std::vector<uint8_t>& corrupt) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(corrupt.data()),
              static_cast<std::streamsize>(corrupt.size()));
    out.close();
    core::Edsr fresh(TinyContext(13));
    ContinualRunResult result{eval::AccuracyMatrix(2)};
    util::Status status = ResumeContinual(&fresh, sequence, EvalOptions{},
                                          checkpoint, &result);
    EXPECT_FALSE(status.ok());
  };

  // Truncation (lost tail) and a payload bit flip (silent disk corruption).
  expect_unloadable(
      std::vector<uint8_t>(bytes.begin(), bytes.begin() + bytes.size() / 2));
  std::vector<uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  expect_unloadable(flipped);
  std::remove(path.c_str());
}

TEST(Resume, CheckpointCoveringDifferentSequenceIsRejected) {
  CheckpointOptions checkpoint;
  checkpoint.directory = TestDir("resume_wrong_tasks");
  TaskSequence two_tasks = TinySequence(17, 2);
  {
    core::Edsr strategy(TinyContext(17));
    CheckpointOptions one = checkpoint;
    one.stop_after_increment = 0;
    RunContinual(&strategy, two_tasks, EvalOptions{}, one);
  }
  TaskSequence three_tasks = TinySequence(17, 3);
  core::Edsr fresh(TinyContext(17));
  ContinualRunResult result{eval::AccuracyMatrix(3)};
  util::Status status = ResumeContinual(&fresh, three_tasks, EvalOptions{},
                                        checkpoint, &result);
  EXPECT_FALSE(status.ok());
  std::remove((checkpoint.directory + "/run.ckpt").c_str());
}

}  // namespace
}  // namespace edsr
