// Tests for KNN evaluation, representation extraction, metrics, and the
// linear probe.
#include "src/eval/knn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/cl/selection.h"
#include "src/data/synthetic.h"
#include "src/eval/linear_probe.h"
#include "src/eval/metrics.h"
#include "src/eval/representations.h"
#include "src/tensor/grad_mode.h"

namespace edsr {
namespace {

using eval::AccuracyMatrix;
using eval::KnnClassifier;
using eval::KnnOptions;
using eval::RepresentationMatrix;

RepresentationMatrix MakeMatrix(std::vector<float> values, int64_t n,
                                int64_t d) {
  RepresentationMatrix m;
  m.values = std::move(values);
  m.n = n;
  m.d = d;
  return m;
}

TEST(Knn, PerfectlySeparableClusters) {
  // Two clusters on orthogonal axes.
  RepresentationMatrix bank = MakeMatrix(
      {1, 0, 0.9f, 0.1f, 0, 1, 0.1f, 0.9f}, 4, 2);
  KnnOptions options;
  options.k = 2;
  options.num_classes = 2;
  KnnClassifier knn(bank, {0, 0, 1, 1}, options);
  float q0[] = {0.95f, 0.05f};
  float q1[] = {0.05f, 0.95f};
  EXPECT_EQ(knn.Predict(q0), 0);
  EXPECT_EQ(knn.Predict(q1), 1);
}

TEST(Knn, EvaluateComputesFraction) {
  RepresentationMatrix bank = MakeMatrix({1, 0, 0, 1}, 2, 2);
  KnnOptions options;
  options.k = 1;
  options.num_classes = 2;
  KnnClassifier knn(bank, {0, 1}, options);
  RepresentationMatrix queries =
      MakeMatrix({1, 0.1f, 0.1f, 1, 1, 0}, 3, 2);
  // Labels: correct, correct, wrong.
  double acc = knn.Evaluate(queries, {0, 1, 1});
  EXPECT_NEAR(acc, 2.0 / 3.0, 1e-9);
}

TEST(Knn, CosineNotEuclidean) {
  // A query aligned with class 0's direction but with a huge magnitude must
  // still match class 0 (cosine is scale invariant).
  RepresentationMatrix bank = MakeMatrix({1, 0, 0, 1}, 2, 2);
  KnnOptions options;
  options.k = 1;
  options.num_classes = 2;
  KnnClassifier knn(bank, {0, 1}, options);
  float q[] = {1000.0f, 1.0f};
  EXPECT_EQ(knn.Predict(q), 0);
}

TEST(Knn, KLargerThanBankIsClamped) {
  RepresentationMatrix bank = MakeMatrix({1, 0, 0, 1}, 2, 2);
  KnnOptions options;
  options.k = 50;
  options.num_classes = 2;
  KnnClassifier knn(bank, {0, 1}, options);
  float q[] = {1.0f, 0.0f};
  EXPECT_EQ(knn.Predict(q), 0);  // similarity weighting breaks the tie
}

TEST(ExtractRepresentations, ShapesAndDeterminism) {
  util::Rng rng(0);
  ssl::EncoderConfig config;
  config.mlp_dims = {10, 12, 12};
  config.representation_dim = 6;
  config.projector_hidden = 12;
  ssl::Encoder encoder(config, &rng);
  data::SyntheticTabularConfig data_config;
  data_config.num_features = 10;
  data_config.train_size = 37;
  data_config.seed = 1;
  auto pair = MakeSyntheticTabularData(data_config);
  auto reps1 = eval::ExtractRepresentations(&encoder, pair.train, 8);
  auto reps2 = eval::ExtractRepresentations(&encoder, pair.train, 16);
  EXPECT_EQ(reps1.n, 37);
  EXPECT_EQ(reps1.d, 6);
  // Eval-mode extraction is batch-size independent (running stats).
  for (size_t i = 0; i < reps1.values.size(); ++i) {
    EXPECT_NEAR(reps1.values[i], reps2.values[i], 1e-4f);
  }
}

TEST(ExtractRepresentations, RestoresTrainingMode) {
  util::Rng rng(1);
  ssl::EncoderConfig config;
  config.mlp_dims = {4, 6, 6};
  config.representation_dim = 4;
  ssl::Encoder encoder(config, &rng);
  encoder.SetTraining(true);
  data::SyntheticTabularConfig data_config;
  data_config.num_features = 4;
  data_config.train_size = 8;
  data_config.seed = 2;
  auto pair = MakeSyntheticTabularData(data_config);
  eval::ExtractRepresentations(&encoder, pair.train);
  EXPECT_TRUE(encoder.training());
}

TEST(ExtractRepresentations, HeadlessEncoderIgnoresHeadArgument) {
  // Regression: passing head >= 0 for an encoder without input heads used to
  // call SetActiveHead and abort.
  util::Rng rng(4);
  ssl::EncoderConfig config;
  config.mlp_dims = {6, 8, 8};
  config.representation_dim = 4;
  ssl::Encoder encoder(config, &rng);
  ASSERT_FALSE(encoder.has_input_heads());
  data::SyntheticTabularConfig data_config;
  data_config.num_features = 6;
  data_config.train_size = 9;
  data_config.seed = 5;
  auto pair = MakeSyntheticTabularData(data_config);
  auto reps = eval::ExtractRepresentations(&encoder, pair.train, 4,
                                           /*head=*/2);
  EXPECT_EQ(reps.n, 9);
  EXPECT_EQ(reps.d, 4);
}

TEST(ExtractRepresentations, HeadedEncoderSwitchesAndRestoresHead) {
  util::Rng rng(5);
  ssl::EncoderConfig config;
  config.mlp_dims = {6, 8, 8};
  config.representation_dim = 4;
  config.input_head_dims = {5, 6, 7};  // three per-increment heads
  ssl::Encoder encoder(config, &rng);
  encoder.SetActiveHead(2);
  data::SyntheticTabularConfig data_config;
  data_config.num_features = 6;  // matches head 1's input dim
  data_config.train_size = 6;
  data_config.seed = 6;
  auto pair = MakeSyntheticTabularData(data_config);
  eval::ExtractRepresentations(&encoder, pair.train, 4, /*head=*/1);
  EXPECT_EQ(encoder.active_head(), 2);  // restored after extraction
  // head = -1 means "leave the active head alone".
  data::SyntheticTabularConfig wide;
  wide.num_features = 7;  // head 2's input dim
  wide.train_size = 4;
  wide.seed = 7;
  auto pair2 = MakeSyntheticTabularData(wide);
  eval::ExtractRepresentations(&encoder, pair2.train, 4, /*head=*/-1);
  EXPECT_EQ(encoder.active_head(), 2);
}

TEST(ExtractRepresentations, InferencePathsBuildZeroAutogradNodes) {
  // Acceptance check for the GradMode tentpole: extraction and selection
  // scoring must not materialize any autograd graph.
  util::Rng rng(8);
  ssl::EncoderConfig config;
  config.mlp_dims = {6, 8, 8};
  config.representation_dim = 4;
  ssl::Encoder encoder(config, &rng);
  data::SyntheticTabularConfig data_config;
  data_config.num_features = 6;
  data_config.train_size = 20;
  data_config.seed = 9;
  auto pair = MakeSyntheticTabularData(data_config);

  tensor::ResetAutogradNodeCount();
  auto reps = eval::ExtractRepresentations(&encoder, pair.train, 8);
  cl::SelectionContext selection;
  selection.representations = &reps;
  cl::HighEntropySelector selector(cl::HighEntropySelector::Mode::kPcaLeverage,
                                   /*num_components=*/2);
  util::Rng select_rng(10);
  std::vector<int64_t> picks = selector.Select(selection, 5, &select_rng);
  EXPECT_EQ(picks.size(), 5u);
  EXPECT_EQ(tensor::AutogradNodesCreated(), 0);
}

TEST(AccuracyMatrix, AccAveragesRow) {
  AccuracyMatrix m(3);
  m.Set(0, 0, 0.9);
  m.Set(1, 0, 0.8);
  m.Set(1, 1, 0.6);
  EXPECT_NEAR(m.Acc(0), 0.9, 1e-9);
  EXPECT_NEAR(m.Acc(1), 0.7, 1e-9);
}

TEST(AccuracyMatrix, ForgettingIsMaxDrop) {
  AccuracyMatrix m(3);
  m.Set(0, 0, 0.9);
  m.Set(1, 0, 0.5);
  m.Set(1, 1, 0.8);
  m.Set(2, 0, 0.7);  // partial recovery: forgetting still vs the 0.9 peak
  m.Set(2, 1, 0.6);
  m.Set(2, 2, 0.9);
  EXPECT_NEAR(m.Forgetting(1, 0), 0.4, 1e-9);
  EXPECT_NEAR(m.Forgetting(2, 0), 0.2, 1e-9);
  EXPECT_NEAR(m.Forgetting(2, 1), 0.2, 1e-9);
  EXPECT_NEAR(m.Fgt(2), 0.2, 1e-9);
  EXPECT_NEAR(m.Fgt(0), 0.0, 1e-9);
}

TEST(AccuracyMatrix, NegativeForgettingWhenImproving) {
  // Backward transfer: accuracy on old task *improves*; forgetting is 0
  // relative to its own peak, which is the later value.
  AccuracyMatrix m(2);
  m.Set(0, 0, 0.5);
  m.Set(1, 0, 0.7);
  m.Set(1, 1, 0.8);
  EXPECT_NEAR(m.Forgetting(1, 0), 0.0, 1e-9);
}

TEST(AccuracyMatrix, InvalidAccessDies) {
  AccuracyMatrix m(2);
  m.Set(0, 0, 0.5);
  EXPECT_DEATH(m.Set(0, 1, 0.5), "j <= i");
  EXPECT_DEATH(m.Get(1, 0), "not recorded");
  EXPECT_DEATH(m.Set(0, 0, 42.0), "fraction");
}

TEST(AccuracyMatrix, FinalConvenienceMatchesLastRow) {
  AccuracyMatrix m(2);
  m.Set(0, 0, 1.0);
  m.Set(1, 0, 0.5);
  m.Set(1, 1, 0.7);
  EXPECT_NEAR(m.FinalAcc(), 0.6, 1e-9);
  EXPECT_NEAR(m.FinalFgt(), 0.5, 1e-9);
}

TEST(LinearProbe, LearnsSeparableData) {
  // Linearly separable representations: probe should be near perfect.
  util::Rng rng(3);
  int64_t n = 120, d = 4;
  RepresentationMatrix train = MakeMatrix(std::vector<float>(n * d), n, d);
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t c = i % 3;
    labels[i] = c;
    for (int64_t j = 0; j < d; ++j) {
      train.values[i * d + j] = rng.Normal(0.0f, 0.2f) + (j == c ? 2.0f : 0.0f);
    }
  }
  eval::LinearProbeOptions options;
  options.num_classes = 3;
  options.epochs = 20;
  double acc = LinearProbeAccuracy(train, labels, train, labels, options);
  EXPECT_GT(acc, 0.95);
}

}  // namespace
}  // namespace edsr
