// Tests for the strategy base loop and the baseline methods
// (Finetune, SI, DER, LUMP, CaSSLe).
#include "src/cl/strategy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/cl/cassle.h"
#include "src/cl/der.h"
#include "src/cl/factory.h"
#include "src/cl/lump.h"
#include "src/cl/si.h"
#include "src/cl/trainer.h"
#include "src/data/synthetic.h"

namespace edsr {
namespace {

using cl::StrategyContext;
using data::TaskSequence;

// Small but learnable image workload: 4 classes -> 2 tasks x 2 classes.
data::SyntheticImagePair TinyImages(uint64_t seed) {
  data::SyntheticImageConfig config;
  config.name = "tiny";
  config.num_classes = 4;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.geometry = {3, 4, 4};
  config.latent_dim = 6;
  config.class_separation = 3.5f;
  config.seed = seed;
  return MakeSyntheticImageData(config);
}

StrategyContext TinyContext(uint64_t seed = 0) {
  StrategyContext context;
  context.encoder.backbone = ssl::EncoderConfig::BackboneType::kMlp;
  context.encoder.mlp_dims = {48, 32, 32};
  context.encoder.projector_hidden = 32;
  context.encoder.representation_dim = 16;
  context.epochs = 3;
  context.batch_size = 16;
  context.lr = 0.05f;
  context.memory_per_task = 8;
  context.replay_batch_size = 8;
  context.seed = seed;
  return context;
}

TaskSequence TinySequence(uint64_t seed) {
  data::SyntheticImagePair pair = TinyImages(seed);
  return TaskSequence::SplitByClasses(pair.train, pair.test, 2, nullptr);
}

TEST(Finetune, LearnsAboveChance) {
  StrategyContext context = TinyContext(1);
  context.epochs = 6;
  cl::Finetune strategy(context);
  TaskSequence seq = TinySequence(11);
  strategy.LearnIncrement(seq.task(0));
  double acc = cl::EvaluateTask(strategy.encoder(), seq.task(0), {});
  // Two classes in the task: chance is 0.5.
  EXPECT_GT(acc, 0.6) << "finetune failed to learn a single increment";
}

TEST(Finetune, TrainingReducesSimSiamLoss) {
  // The encoder should produce more view-invariant representations after
  // training: directly check the loss trend via two manual increments.
  StrategyContext context = TinyContext(2);
  context.epochs = 1;
  cl::Finetune strategy(context);
  TaskSequence seq = TinySequence(12);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_EQ(strategy.increments_seen(), 1);
  strategy.LearnIncrement(seq.task(1));
  EXPECT_EQ(strategy.increments_seen(), 2);
}

TEST(Si, AccumulatesImportanceAcrossIncrements) {
  cl::Si strategy(TinyContext(3));
  TaskSequence seq = TinySequence(13);
  EXPECT_DOUBLE_EQ(strategy.TotalImportance(), 0.0);
  strategy.LearnIncrement(seq.task(0));
  double after_first = strategy.TotalImportance();
  EXPECT_GT(after_first, 0.0);
  strategy.LearnIncrement(seq.task(1));
  EXPECT_GT(strategy.TotalImportance(), after_first);
}

TEST(Der, StoresDataWithBackboneOutputs) {
  StrategyContext context = TinyContext(4);
  cl::Der strategy(context);
  TaskSequence seq = TinySequence(14);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_EQ(strategy.memory().size(), context.memory_per_task);
  const cl::MemoryEntry& entry = strategy.memory().entry(0);
  EXPECT_EQ(entry.task_id, 0);
  EXPECT_EQ(static_cast<int64_t>(entry.features.size()), 48);
  EXPECT_FALSE(entry.stored_output.empty());
  // Second increment replays without error and stores its own quota.
  strategy.LearnIncrement(seq.task(1));
  EXPECT_EQ(strategy.memory().size(), 2 * context.memory_per_task);
}

TEST(Lump, StoresAndMixes) {
  StrategyContext context = TinyContext(5);
  cl::Lump strategy(context);
  TaskSequence seq = TinySequence(15);
  strategy.LearnIncrement(seq.task(0));
  EXPECT_EQ(strategy.memory().size(), context.memory_per_task);
  EXPECT_TRUE(strategy.memory().entry(0).stored_output.empty());
  strategy.LearnIncrement(seq.task(1));  // exercises the mixup path
  EXPECT_EQ(strategy.memory().size(), 2 * context.memory_per_task);
}

TEST(Cassle, TeacherAppearsAtSecondIncrement) {
  cl::Cassle strategy(TinyContext(6));
  TaskSequence seq = TinySequence(16);
  EXPECT_FALSE(strategy.has_teacher());
  strategy.LearnIncrement(seq.task(0));
  EXPECT_FALSE(strategy.has_teacher()) << "no teacher for the first increment";
  strategy.LearnIncrement(seq.task(1));
  EXPECT_TRUE(strategy.has_teacher());
}

TEST(Cassle, DistillationRestrainsDrift) {
  // After learning task 1, the CaSSLe encoder should stay closer to its
  // pre-increment representation of task 0 than a plain finetuned encoder
  // (relative drift in representation space).
  StrategyContext context = TinyContext(7);
  context.epochs = 4;
  TaskSequence seq = TinySequence(17);

  auto drift = [&](cl::ContinualStrategy* strategy) {
    strategy->LearnIncrement(seq.task(0));
    eval::RepresentationMatrix before =
        eval::ExtractRepresentations(strategy->encoder(), seq.task(0).train);
    strategy->LearnIncrement(seq.task(1));
    eval::RepresentationMatrix after =
        eval::ExtractRepresentations(strategy->encoder(), seq.task(0).train);
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < before.values.size(); ++i) {
      double diff = after.values[i] - before.values[i];
      num += diff * diff;
      den += static_cast<double>(before.values[i]) * before.values[i];
    }
    return num / (den + 1e-9);
  };
  cl::Finetune finetune(context);
  cl::Cassle cassle(context);
  double finetune_drift = drift(&finetune);
  double cassle_drift = drift(&cassle);
  EXPECT_LT(cassle_drift, finetune_drift)
      << "distillation should reduce representation drift";
}

TEST(Factory, ConstructsEveryStrategy) {
  StrategyContext context = TinyContext(8);
  for (const char* name :
       {"finetune", "si", "der", "lump", "cassle", "edsr", "edsr-css",
        "edsr-dis", "edsr-random", "edsr-distant", "edsr-kmeans",
        "edsr-minvar", "edsr-norm", "edsr-logdet"}) {
    auto strategy = cl::MakeStrategy(name, context);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
  EXPECT_DEATH(cl::MakeStrategy("nope", context), "unknown strategy");
}

TEST(Trainer, RunContinualFillsMatrix) {
  StrategyContext context = TinyContext(9);
  context.epochs = 2;
  cl::Finetune strategy(context);
  TaskSequence seq = TinySequence(19);
  cl::ContinualRunResult result = cl::RunContinual(&strategy, seq, {});
  EXPECT_TRUE(result.matrix.IsSet(0, 0));
  EXPECT_TRUE(result.matrix.IsSet(1, 0));
  EXPECT_TRUE(result.matrix.IsSet(1, 1));
  EXPECT_GT(result.train_seconds, 0.0);
  double acc = result.matrix.FinalAcc();
  EXPECT_GT(acc, 0.4);
  EXPECT_LE(acc, 1.0);
}

TEST(Trainer, MultitaskRunsOnImages) {
  StrategyContext context = TinyContext(10);
  context.epochs = 2;
  TaskSequence seq = TinySequence(20);
  double acc = cl::MultitaskAccuracy(context, seq, {});
  EXPECT_GT(acc, 0.4);
  EXPECT_LE(acc, 1.0);
}

TEST(Trainer, HeterogeneousTabularSequenceTrains) {
  // Two tabular increments with different dims through input heads.
  data::SyntheticTabularConfig a, b;
  a.name = "a";
  a.num_features = 6;
  a.train_size = 40;
  a.test_size = 16;
  a.seed = 21;
  b.name = "b";
  b.num_features = 11;
  b.train_size = 40;
  b.test_size = 16;
  b.seed = 22;
  auto pa = MakeSyntheticTabularData(a);
  auto pb = MakeSyntheticTabularData(b);
  TaskSequence seq = TaskSequence::FromDatasets(
      {{pa.train, pa.test}, {pb.train, pb.test}});

  StrategyContext context;
  context.encoder.mlp_dims = {16, 24, 24};
  context.encoder.projector_hidden = 24;
  context.encoder.representation_dim = 12;
  context.encoder.input_head_dims = {6, 11};
  context.epochs = 3;
  context.batch_size = 16;
  context.use_adam = true;
  context.memory_per_task = 6;
  context.replay_batch_size = 6;
  context.seed = 23;

  cl::Cassle strategy(context);
  cl::ContinualRunResult result = cl::RunContinual(&strategy, seq, {});
  EXPECT_TRUE(result.matrix.IsSet(1, 0));
  EXPECT_GE(result.matrix.FinalAcc(), 0.3);
}

}  // namespace
}  // namespace edsr
